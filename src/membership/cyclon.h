// Cyclon proactive peer sampling (Voulgaris et al., JNSM 2005).
//
// Used as the PSS of the SimpleGossip baseline (§III-D) and available for
// the §IV perspectives (proactive view refresh for better parent diversity).
// Shuffles travel as datagrams: Cyclon does not keep connections open and
// has no explicit failure detection — stale entries age out through the
// shuffle mechanism, exactly the property the paper contrasts with
// HyParView's reactive approach.
//
// Cyclon implements Network::DatagramHandler but does NOT bind itself to the
// host: the owning protocol stack (e.g. SimpleGossip) is the host's single
// datagram handler and forwards kCyclon* messages here. Tests that run
// Cyclon standalone bind it directly.
#pragma once

#include <cstdint>
#include <vector>

#include "membership/messages.h"
#include "net/network.h"
#include "net/process.h"
#include "sim/rng.h"

namespace brisa::membership {

class Cyclon final : public net::Process, public net::Network::DatagramHandler {
 public:
  struct Config {
    std::size_t view_size = 8;       ///< c
    std::size_t shuffle_length = 4;  ///< l
    sim::Duration shuffle_period = sim::Duration::seconds(2);
  };

  Cyclon(net::Network& network, net::NodeId id, Config config);

  /// Seeds the view directly (bootstrap population) and starts shuffling.
  void bootstrap(const std::vector<net::NodeId>& initial);

  /// Joins knowing a single contact; shuffles diffuse the rest.
  void join(net::NodeId contact);

  [[nodiscard]] std::vector<net::NodeId> view() const;

  /// `k` distinct peers sampled uniformly from the current view.
  [[nodiscard]] std::vector<net::NodeId> random_peers(std::size_t k);

  [[nodiscard]] const Config& config() const { return config_; }

  // Network::DatagramHandler
  void on_datagram(net::NodeId from, net::MessagePtr message) override;

  struct Counters {
    std::uint64_t shuffles_initiated = 0;
    std::uint64_t shuffles_answered = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void start_timer();
  void on_shuffle_timer();
  void handle_shuffle(net::NodeId from, const CyclonShuffle& msg);
  void handle_shuffle_reply(const CyclonShuffleReply& msg);
  void integrate(const std::vector<CyclonEntry>& received,
                 const std::vector<CyclonEntry>& sent);
  [[nodiscard]] bool in_view(net::NodeId node) const;

  Config config_;
  sim::Rng rng_;
  std::vector<CyclonEntry> view_;
  std::vector<CyclonEntry> last_sent_;
  bool started_ = false;
  Counters counters_;
};

}  // namespace brisa::membership
