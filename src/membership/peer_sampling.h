// Peer sampling service abstraction (§II-A).
//
// BRISA is written against this interface so that the dissemination layer is
// independent of the concrete PSS. HyParView implements it reactively (the
// configuration evaluated in the paper); a proactive PSS such as Cyclon can
// be substituted for the §IV "perspectives" experiments.
#pragma once

#include <functional>
#include <vector>

#include "net/message.h"
#include "net/node_id.h"
#include "sim/time.h"

namespace brisa::membership {

/// Why a neighbor left the view.
enum class NeighborLossReason : std::uint8_t {
  kFailed,   ///< crash detected (keep-alive / transport)
  kEvicted,  ///< view management decision (graceful DISCONNECT)
};

/// One stream's application progress, piggybacked on keep-alives (§II-F:
/// keep-alives carry the metadata repair needs). With a forest of streams
/// multiplexed over one substrate, each stream contributes one entry; the
/// keep-alive wire cost therefore grows linearly with the number of locally
/// active streams (20 bytes per stream, see DESIGN.md §8).
struct AppWatermark {
  net::StreamId stream = net::kDefaultStream;
  /// Next sequence this node still needs (max delivered + 1).
  std::uint64_t watermark = 0;
  /// Second application-defined value; BRISA carries the stream's cumulative
  /// path delay (µs) feeding the delay-aware parent selection.
  std::uint64_t aux = 0;
};

class PssListener {
 public:
  virtual ~PssListener() = default;

  /// A bidirectional link to `peer` is established and usable.
  virtual void on_neighbor_up(net::NodeId peer) = 0;

  /// The link to `peer` is gone.
  virtual void on_neighbor_down(net::NodeId peer,
                                NeighborLossReason reason) = 0;

  /// A non-membership message arrived over a membership link.
  virtual void on_app_message(net::NodeId from, net::MessagePtr message) = 0;

  /// One stream's progress watermark piggybacked on a neighbor's keep-alive;
  /// called once per AppWatermark entry the keep-alive carried. Default:
  /// ignore.
  virtual void on_neighbor_watermark(net::NodeId /*peer*/,
                                     net::StreamId /*stream*/,
                                     std::uint64_t /*watermark*/,
                                     std::uint64_t /*aux*/) {}
};

class PeerSamplingService {
 public:
  virtual ~PeerSamplingService() = default;

  /// The view exposed to the application (HyParView: the active view).
  [[nodiscard]] virtual std::vector<net::NodeId> view() const = 0;

  /// Allocation-free variant for per-message hot paths (relay fan-out,
  /// candidate scans): a reference to the implementation's own view storage,
  /// in the same deterministic ascending order view() copies out of. The
  /// reference is invalidated by the next membership change, so callers must
  /// not hold it across anything that can establish or drop a neighbor.
  [[nodiscard]] virtual const std::vector<net::NodeId>& view_ref() const = 0;

  [[nodiscard]] virtual bool is_neighbor(net::NodeId peer) const = 0;

  /// Sends an application message over the established link to `peer`.
  /// Returns false if `peer` is not currently a usable neighbor.
  virtual bool send_app(net::NodeId peer, net::MessagePtr message,
                        net::TrafficClass traffic_class) = 0;

  /// Smoothed RTT estimate from keep-alive probes; Duration::max() until the
  /// first probe completes. Input to the delay-aware strategy (§II-E).
  [[nodiscard]] virtual sim::Duration rtt_estimate(net::NodeId peer) const = 0;

  virtual void set_listener(PssListener* listener) = 0;

  /// Supplies the per-stream watermark entries carried in outgoing
  /// keep-alives (one AppWatermark per locally active stream).
  using WatermarkProvider = std::function<std::vector<AppWatermark>()>;
  virtual void set_watermark_provider(WatermarkProvider provider) = 0;
};

}  // namespace brisa::membership
