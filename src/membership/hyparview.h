// HyParView membership protocol (Leitão et al., DSN 2007) with the BRISA
// paper's expansion-factor modification (§II-A).
//
// Each node keeps a small *active view* (bidirectional, TCP-backed,
// keep-alive monitored — this is what the application sees) and a larger
// *passive view* refreshed by periodic shuffles and used as a reservoir of
// replacement neighbors. Evictions do not trigger replacement while the
// active view holds between `active_size` and `active_size ×
// expansion_factor` members, which prevents the join-time eviction chain
// reactions the paper describes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "membership/messages.h"
#include "membership/peer_sampling.h"
#include "net/network.h"
#include "net/process.h"
#include "net/transport.h"
#include "sim/rng.h"
#include "util/flat_map.h"

namespace brisa::membership {

class HyParView final : public PeerSamplingService,
                        public net::Process,
                        public net::TransportHandler,
                        public net::Network::DatagramHandler {
 public:
  struct Config {
    std::size_t active_size = 4;      ///< target active view size (paper: 4–10)
    double expansion_factor = 2.0;    ///< §II-A; Fig 8 uses 1.0
    std::size_t passive_size = 24;
    int active_rwl = 6;               ///< ARWL for forward-join walks
    int passive_rwl = 3;              ///< PRWL
    std::size_t shuffle_active_sample = 3;
    std::size_t shuffle_passive_sample = 4;
    int shuffle_ttl = 3;
    sim::Duration shuffle_period = sim::Duration::seconds(5);
    sim::Duration keepalive_period = sim::Duration::seconds(1);
    int keepalive_miss_limit = 3;
    /// EWMA weight of a new RTT sample.
    double rtt_alpha = 0.3;
  };

  HyParView(net::Network& network, net::Transport& transport, net::NodeId id,
            Config config);

  /// Bootstraps as the very first node (no contact): starts timers only.
  void start();

  /// Joins through `contact` (§II-F): connect, send JOIN, start timers.
  void join(net::NodeId contact);

  // --- PeerSamplingService --------------------------------------------------
  [[nodiscard]] std::vector<net::NodeId> view() const override;
  [[nodiscard]] const std::vector<net::NodeId>& view_ref() const override {
    return established_;
  }
  [[nodiscard]] bool is_neighbor(net::NodeId peer) const override;
  bool send_app(net::NodeId peer, net::MessagePtr message,
                net::TrafficClass traffic_class) override;
  [[nodiscard]] sim::Duration rtt_estimate(net::NodeId peer) const override;
  void set_listener(PssListener* listener) override { listener_ = listener; }
  void set_watermark_provider(WatermarkProvider provider) override {
    watermark_provider_ = std::move(provider);
  }

  // --- TransportHandler ------------------------------------------------------
  void on_connection_up(net::ConnectionId conn, net::NodeId peer,
                        bool initiated) override;
  void on_connection_down(net::ConnectionId conn, net::NodeId peer,
                          net::CloseReason reason) override;
  void on_message(net::ConnectionId conn, net::NodeId from,
                  net::MessagePtr message) override;

  // --- DatagramHandler (shuffle replies travel connectionless) --------------
  void on_datagram(net::NodeId from, net::MessagePtr message) override;

  // --- Introspection (tests, structure analysis) -----------------------------
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] std::vector<net::NodeId> passive_view() const;
  [[nodiscard]] std::size_t capacity() const;

  struct Counters {
    std::uint64_t joins_handled = 0;
    std::uint64_t forward_joins = 0;
    std::uint64_t evictions = 0;
    std::uint64_t neighbor_accepts = 0;
    std::uint64_t neighbor_rejects = 0;
    std::uint64_t failures_detected = 0;
    std::uint64_t promotions = 0;
    std::uint64_t shuffles_sent = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  enum class LinkState : std::uint8_t {
    kDialing,      ///< transport connect in flight
    kAwaitReply,   ///< NEIGHBOR/JOIN sent, waiting for the verdict
    kInbound,      ///< accepted connection, waiting for first message
    kEstablished,  ///< full member of the active view
  };

  /// Why we dialed a peer (determines the first message on the link).
  enum class DialPurpose : std::uint8_t {
    kJoin,
    kNeighborHigh,
    kNeighborLow,
    kForwardJoinAccept,
  };

  struct Link {
    net::ConnectionId conn = net::kInvalidConnectionId;
    LinkState state = LinkState::kDialing;
    DialPurpose purpose = DialPurpose::kNeighborLow;
    // RTT bookkeeping (established links only).
    double rtt_ewma_us = -1.0;
    std::uint64_t outstanding_probe = 0;
    sim::TimePoint probe_sent_at;
    int missed_probes = 0;
  };

  // Message handlers.
  void handle_join(net::ConnectionId conn, net::NodeId from);
  void handle_forward_join(net::NodeId from, const HpvForwardJoin& msg);
  void handle_neighbor(net::ConnectionId conn, net::NodeId from,
                       const HpvNeighbor& msg);
  void handle_neighbor_reply(net::ConnectionId conn, net::NodeId from,
                             const HpvNeighborReply& msg);
  void handle_disconnect(net::ConnectionId conn, net::NodeId from);
  void handle_shuffle(net::NodeId from, const HpvShuffle& msg);
  void integrate_shuffle_sample(const std::vector<net::NodeId>& sample,
                                const std::vector<net::NodeId>& sent);
  [[nodiscard]] WatermarkSnapshot current_watermarks() const;
  void notify_watermarks(net::NodeId from,
                         const std::vector<AppWatermark>& entries);
  void handle_keepalive(net::ConnectionId conn, net::NodeId from,
                        const HpvKeepAlive& msg);
  void handle_keepalive_reply(net::NodeId from, const HpvKeepAliveReply& msg);

  // View management.
  void establish(net::NodeId peer, net::ConnectionId conn);
  void drop_active(net::NodeId peer, NeighborLossReason reason,
                   bool close_conn);
  void evict_if_needed(net::NodeId keep, std::size_t threshold);
  void maybe_promote_replacement();
  void add_passive(net::NodeId peer);
  void dial(net::NodeId peer, DialPurpose purpose);
  void send_control(net::NodeId peer, net::MessagePtr message);
  /// The established-peer cache, ascending by id (the iteration order the
  /// std::map-based implementation produced). Copy before mutating the view.
  [[nodiscard]] const std::vector<net::NodeId>& established_peers() const {
    return established_;
  }
  [[nodiscard]] std::vector<net::NodeId> passive_candidates() const;

  // Timers.
  void start_timers();
  void on_shuffle_timer();
  void on_keepalive_timer();
  void fail_link(net::NodeId peer);

  net::Transport& transport_;
  Config config_;
  sim::Rng rng_;
  PssListener* listener_ = nullptr;
  WatermarkProvider watermark_provider_;

  /// Active view + in-progress links. Sorted flat storage: the per-send
  /// lookup is a binary search over one or two cache lines, and iteration
  /// stays in the ascending-id order the determinism contract requires.
  util::FlatMap<net::NodeId, Link, 8> links_;
  util::FlatSet<net::NodeId, 8> passive_;
  /// Ids of the kEstablished subset of links_, ascending — maintained by
  /// establish/drop_active so view()/send fan-outs never rebuild it.
  std::vector<net::NodeId> established_;
  net::NodeId rejoin_contact_;  ///< last join contact; isolation fallback
  std::vector<net::NodeId> last_shuffle_sent_;
  std::uint64_t next_probe_id_ = 1;
  bool started_ = false;
  Counters counters_;
};

}  // namespace brisa::membership
