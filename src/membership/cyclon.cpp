#include "membership/cyclon.h"

#include <algorithm>

#include "net/message_pool.h"
#include "util/assert.h"

namespace brisa::membership {

namespace {
constexpr net::TrafficClass kTc = net::TrafficClass::kMembership;
}  // namespace

Cyclon::Cyclon(net::Network& network, net::NodeId id, Config config)
    : net::Process(network, id),
      config_(config),
      rng_(network.simulator().rng().split(0xCCC107ULL ^ id.index())) {
  BRISA_ASSERT(config_.shuffle_length >= 1);
  BRISA_ASSERT(config_.view_size >= config_.shuffle_length);
}

void Cyclon::bootstrap(const std::vector<net::NodeId>& initial) {
  for (const net::NodeId node : initial) {
    if (node == id() || in_view(node)) continue;
    if (view_.size() >= config_.view_size) break;
    view_.push_back(CyclonEntry{node, 0});
  }
  start_timer();
}

void Cyclon::join(net::NodeId contact) {
  BRISA_ASSERT(contact != id());
  if (!in_view(contact)) view_.push_back(CyclonEntry{contact, 0});
  start_timer();
}

void Cyclon::start_timer() {
  if (started_) return;
  started_ = true;
  const auto phase = sim::Duration::microseconds(
      static_cast<std::int64_t>(rng_.uniform(static_cast<std::uint64_t>(
          config_.shuffle_period.us()))));
  after(phase, [this]() {
    every(config_.shuffle_period, [this]() { on_shuffle_timer(); });
  });
}

std::vector<net::NodeId> Cyclon::view() const {
  std::vector<net::NodeId> out;
  out.reserve(view_.size());
  for (const CyclonEntry& entry : view_) out.push_back(entry.node);
  return out;
}

std::vector<net::NodeId> Cyclon::random_peers(std::size_t k) {
  return rng_.sample(view(), k);
}

bool Cyclon::in_view(net::NodeId node) const {
  return std::any_of(view_.begin(), view_.end(), [node](const CyclonEntry& e) {
    return e.node == node;
  });
}

void Cyclon::on_shuffle_timer() {
  if (view_.empty()) return;
  ++counters_.shuffles_initiated;
  // 1. Age all entries; pick the oldest as shuffle partner and remove it.
  std::size_t oldest = 0;
  for (std::size_t i = 0; i < view_.size(); ++i) {
    ++view_[i].age;
    if (view_[i].age > view_[oldest].age) oldest = i;
  }
  const net::NodeId partner = view_[oldest].node;
  view_.erase(view_.begin() +
              static_cast<std::vector<CyclonEntry>::difference_type>(oldest));
  // 2. Sample l-1 other entries plus ourselves at age 0.
  std::vector<CyclonEntry> sample = rng_.sample(view_, config_.shuffle_length - 1);
  sample.push_back(CyclonEntry{id(), 0});
  last_sent_ = sample;
  network().send_datagram(id(), partner,
                          net::make_message<CyclonShuffle>(std::move(sample)),
                          kTc);
}

void Cyclon::on_datagram(net::NodeId from, net::MessagePtr message) {
  switch (message->kind()) {
    case net::MessageKind::kCyclonShuffle:
      handle_shuffle(from, static_cast<const CyclonShuffle&>(*message));
      return;
    case net::MessageKind::kCyclonShuffleReply:
      handle_shuffle_reply(static_cast<const CyclonShuffleReply&>(*message));
      return;
    default:
      return;
  }
}

void Cyclon::handle_shuffle(net::NodeId from, const CyclonShuffle& msg) {
  ++counters_.shuffles_answered;
  const std::vector<CyclonEntry> reply_sample =
      rng_.sample(view_, config_.shuffle_length);
  network().send_datagram(
      id(), from, net::make_message<CyclonShuffleReply>(reply_sample), kTc);
  integrate(msg.entries(), reply_sample);
}

void Cyclon::handle_shuffle_reply(const CyclonShuffleReply& msg) {
  integrate(msg.entries(), last_sent_);
  last_sent_.clear();
}

void Cyclon::integrate(const std::vector<CyclonEntry>& received,
                       const std::vector<CyclonEntry>& sent) {
  std::size_t sent_cursor = 0;
  for (const CyclonEntry& entry : received) {
    if (entry.node == id() || in_view(entry.node)) continue;
    if (view_.size() < config_.view_size) {
      view_.push_back(entry);
      continue;
    }
    // View full: first replace entries that we shipped to the partner, then
    // fall back to replacing the oldest entry.
    bool replaced = false;
    while (sent_cursor < sent.size() && !replaced) {
      const net::NodeId victim = sent[sent_cursor++].node;
      for (CyclonEntry& slot : view_) {
        if (slot.node == victim) {
          slot = entry;
          replaced = true;
          break;
        }
      }
    }
    if (!replaced) {
      std::size_t oldest = 0;
      for (std::size_t i = 1; i < view_.size(); ++i) {
        if (view_[i].age > view_[oldest].age) oldest = i;
      }
      view_[oldest] = entry;
    }
  }
}

}  // namespace brisa::membership
