#include "membership/hyparview.h"

#include <algorithm>
#include <cmath>

#include "net/message_pool.h"
#include "util/assert.h"
#include "util/logging.h"

namespace brisa::membership {

namespace {
constexpr net::TrafficClass kTc = net::TrafficClass::kMembership;
}  // namespace

HyParView::HyParView(net::Network& network, net::Transport& transport,
                     net::NodeId id, Config config)
    : net::Process(network, id),
      transport_(transport),
      config_(config),
      rng_(network.simulator().rng().split(0x487056ULL ^ id.index())) {
  BRISA_ASSERT(config_.active_size >= 1);
  BRISA_ASSERT(config_.expansion_factor >= 1.0);
  transport_.bind(id, this);
  network.bind_datagram_handler(id, this);
}

std::size_t HyParView::capacity() const {
  return static_cast<std::size_t>(std::llround(
      static_cast<double>(config_.active_size) * config_.expansion_factor));
}

void HyParView::start() { start_timers(); }

void HyParView::join(net::NodeId contact) {
  BRISA_ASSERT_MSG(contact != id(), "cannot join through self");
  rejoin_contact_ = contact;
  dial(contact, DialPurpose::kJoin);
  start_timers();
}

void HyParView::start_timers() {
  if (started_) return;
  started_ = true;
  // Small deterministic phase offset so the whole network does not shuffle
  // in lock-step.
  const auto phase = sim::Duration::microseconds(
      static_cast<std::int64_t>(rng_.uniform(1'000'000)));
  after(phase, [this]() {
    every(config_.shuffle_period, [this]() { on_shuffle_timer(); });
    every(config_.keepalive_period, [this]() { on_keepalive_timer(); });
  });
}

// --- PeerSamplingService ----------------------------------------------------

std::vector<net::NodeId> HyParView::view() const { return established_; }

bool HyParView::is_neighbor(net::NodeId peer) const {
  const auto it = links_.find(peer);
  return it != links_.end() && it->second.state == LinkState::kEstablished;
}

bool HyParView::send_app(net::NodeId peer, net::MessagePtr message,
                         net::TrafficClass traffic_class) {
  const auto it = links_.find(peer);
  if (it == links_.end() || it->second.state != LinkState::kEstablished) {
    return false;
  }
  return transport_.send(it->second.conn, id(), std::move(message),
                         traffic_class);
}

sim::Duration HyParView::rtt_estimate(net::NodeId peer) const {
  const auto it = links_.find(peer);
  if (it == links_.end() || it->second.rtt_ewma_us < 0.0) {
    return sim::Duration::max();
  }
  return sim::Duration::microseconds(
      static_cast<std::int64_t>(it->second.rtt_ewma_us));
}

// --- Transport events -------------------------------------------------------

void HyParView::on_connection_up(net::ConnectionId conn, net::NodeId peer,
                                 bool initiated) {
  if (!initiated) return;  // inbound links materialize on their first message
  const auto it = links_.find(peer);
  if (it == links_.end() || it->second.conn != conn) return;
  Link& link = it->second;
  BRISA_ASSERT(link.state == LinkState::kDialing);
  link.state = LinkState::kAwaitReply;
  switch (link.purpose) {
    case DialPurpose::kJoin:
      transport_.send(conn, id(), net::make_message<HpvJoin>(), kTc);
      break;
    case DialPurpose::kNeighborHigh:
    case DialPurpose::kForwardJoinAccept:
      transport_.send(conn, id(), net::make_message<HpvNeighbor>(true), kTc);
      break;
    case DialPurpose::kNeighborLow:
      transport_.send(conn, id(), net::make_message<HpvNeighbor>(false), kTc);
      break;
  }
}

void HyParView::on_connection_down(net::ConnectionId conn, net::NodeId peer,
                                   net::CloseReason reason) {
  const auto it = links_.find(peer);
  if (it == links_.end() || it->second.conn != conn) return;  // stale conn
  const LinkState state = it->second.state;
  if (state == LinkState::kEstablished) {
    // Remote close without DISCONNECT, a crash, or keep-alive timeout at the
    // other end: treat everything except an orderly close as failure.
    const bool failed = reason == net::CloseReason::kPeerFailure ||
                        reason == net::CloseReason::kRefused;
    if (failed) {
      ++counters_.failures_detected;
      passive_.erase(peer);
    }
    drop_active(peer,
                failed ? NeighborLossReason::kFailed
                       : NeighborLossReason::kEvicted,
                /*close_conn=*/false);
    // An orderly close means the peer is alive: keep it as a passive
    // candidate so an otherwise-isolated node can reconnect.
    if (!failed) add_passive(peer);
    maybe_promote_replacement();
    return;
  }
  // A dial in progress failed (dead contact or rejected link).
  links_.erase(it);
  passive_.erase(peer);
  maybe_promote_replacement();
}

void HyParView::on_message(net::ConnectionId conn, net::NodeId from,
                           net::MessagePtr message) {
  using net::MessageKind;
  switch (message->kind()) {
    case MessageKind::kHpvJoin:
      handle_join(conn, from);
      return;
    case MessageKind::kHpvForwardJoin:
      handle_forward_join(
          from, static_cast<const HpvForwardJoin&>(*message));
      return;
    case MessageKind::kHpvNeighbor:
      handle_neighbor(conn, from, static_cast<const HpvNeighbor&>(*message));
      return;
    case MessageKind::kHpvNeighborReply:
      handle_neighbor_reply(
          conn, from, static_cast<const HpvNeighborReply&>(*message));
      return;
    case MessageKind::kHpvDisconnect:
      handle_disconnect(conn, from);
      return;
    case MessageKind::kHpvShuffle:
      handle_shuffle(from, static_cast<const HpvShuffle&>(*message));
      return;
    case MessageKind::kHpvKeepAlive:
      handle_keepalive(conn, from, static_cast<const HpvKeepAlive&>(*message));
      return;
    case MessageKind::kHpvKeepAliveReply:
      handle_keepalive_reply(
          from, static_cast<const HpvKeepAliveReply&>(*message));
      return;
    default:
      // Application traffic riding on the membership links (BRISA, §II-C).
      if (listener_ != nullptr && is_neighbor(from)) {
        listener_->on_app_message(from, std::move(message));
      }
      return;
  }
}

void HyParView::on_datagram(net::NodeId /*from*/, net::MessagePtr message) {
  if (message->kind() == net::MessageKind::kHpvShuffleReply) {
    integrate_shuffle_sample(
        static_cast<const HpvShuffleReply&>(*message).sample(),
        last_shuffle_sent_);
  }
}

// --- Handlers ---------------------------------------------------------------

void HyParView::handle_join(net::ConnectionId conn, net::NodeId from) {
  ++counters_.joins_handled;
  // The contact unconditionally accepts the joiner (§II-A / HyParView).
  establish(from, conn);
  transport_.send(conn, id(), net::make_message<HpvNeighborReply>(true), kTc);
  evict_if_needed(from, config_.active_size);
  // Propagate the joiner through forward-join random walks.
  for (const net::NodeId peer : established_peers()) {
    if (peer == from) continue;
    send_control(peer, net::make_message<HpvForwardJoin>(from,
                                                        config_.active_rwl));
  }
}

void HyParView::handle_forward_join(net::NodeId from,
                                    const HpvForwardJoin& msg) {
  ++counters_.forward_joins;
  const net::NodeId joiner = msg.joiner();
  if (joiner == id()) return;
  const std::vector<net::NodeId> peers = established_peers();
  if (msg.ttl() <= 0 || peers.size() <= 1) {
    if (links_.find(joiner) == links_.end()) {
      dial(joiner, DialPurpose::kForwardJoinAccept);
    }
    return;
  }
  if (msg.ttl() == config_.passive_rwl) add_passive(joiner);
  // Forward the walk to a random neighbor that is neither the sender nor the
  // joiner itself.
  std::vector<net::NodeId> candidates;
  for (const net::NodeId peer : peers) {
    if (peer != from && peer != joiner) candidates.push_back(peer);
  }
  if (candidates.empty()) {
    if (links_.find(joiner) == links_.end()) {
      dial(joiner, DialPurpose::kForwardJoinAccept);
    }
    return;
  }
  const net::NodeId next = rng_.pick(candidates);
  send_control(next,
               net::make_message<HpvForwardJoin>(joiner, msg.ttl() - 1));
}

void HyParView::handle_neighbor(net::ConnectionId conn, net::NodeId from,
                                const HpvNeighbor& msg) {
  const auto it = links_.find(from);
  if (it != links_.end()) {
    Link& existing = it->second;
    if (existing.state == LinkState::kEstablished) {
      // Duplicate link (both sides dialed at some point). Adopt the newer
      // connection on both sides: accept and retire the old one.
      const net::ConnectionId old_conn = existing.conn;
      existing.conn = conn;
      transport_.send(conn, id(), net::make_message<HpvNeighborReply>(true),
                      kTc);
      transport_.close(old_conn, id());
      return;
    }
    // Cross-dial: both ends dialed simultaneously. Deterministic tie-break:
    // the lower-id node's dial wins.
    if (from.index() < id().index()) {
      const net::ConnectionId mine = existing.conn;
      links_.erase(it);
      transport_.close(mine, id());
      ++counters_.neighbor_accepts;
      establish(from, conn);
      transport_.send(conn, id(), net::make_message<HpvNeighborReply>(true),
                      kTc);
      evict_if_needed(from, capacity());
    } else {
      ++counters_.neighbor_rejects;
      transport_.send(conn, id(), net::make_message<HpvNeighborReply>(false),
                      kTc);
    }
    return;
  }
  // §II-A expansion band: promotion-driven (low-priority) links are absorbed
  // without evictions while the view is below target × expansion, breaking
  // the bootstrap chain reactions; high-priority requests always succeed.
  const std::size_t established = active_count();
  const bool accept = msg.high_priority() || established < capacity();
  if (!accept) {
    ++counters_.neighbor_rejects;
    transport_.send(conn, id(), net::make_message<HpvNeighborReply>(false),
                    kTc);
    return;
  }
  ++counters_.neighbor_accepts;
  establish(from, conn);
  transport_.send(conn, id(), net::make_message<HpvNeighborReply>(true), kTc);
  evict_if_needed(from, capacity());
}

void HyParView::handle_neighbor_reply(net::ConnectionId conn,
                                      net::NodeId from,
                                      const HpvNeighborReply& msg) {
  const auto it = links_.find(from);
  if (it == links_.end() || it->second.conn != conn) {
    // Reply for a dial we already abandoned (e.g. lost a cross-dial race).
    if (it == links_.end()) transport_.close(conn, id());
    return;
  }
  if (it->second.state != LinkState::kAwaitReply) return;
  if (msg.accepted()) {
    const bool walk_end_add = it->second.purpose == DialPurpose::kForwardJoinAccept;
    establish(from, conn);
    evict_if_needed(from,
                    walk_end_add ? config_.active_size : capacity());
    return;
  }
  // Rejected: withdraw the dial and look for another candidate.
  links_.erase(it);
  transport_.close(conn, id());
  maybe_promote_replacement();
}

void HyParView::handle_disconnect(net::ConnectionId conn, net::NodeId from) {
  const auto it = links_.find(from);
  if (it == links_.end() || it->second.conn != conn) return;
  drop_active(from, NeighborLossReason::kEvicted, /*close_conn=*/true);
  add_passive(from);
  // The expansion-factor rule (§II-A): only seek a replacement if we fell
  // below the target size — which maybe_promote_replacement checks.
  maybe_promote_replacement();
}

void HyParView::handle_shuffle(net::NodeId from, const HpvShuffle& msg) {
  const std::vector<net::NodeId> peers = established_peers();
  if (msg.ttl() > 0 && peers.size() > 1) {
    std::vector<net::NodeId> candidates;
    for (const net::NodeId peer : peers) {
      if (peer != from && peer != msg.origin()) candidates.push_back(peer);
    }
    if (!candidates.empty()) {
      send_control(rng_.pick(candidates),
                   net::make_message<HpvShuffle>(msg.origin(), msg.ttl() - 1,
                                                msg.sample()));
      return;
    }
  }
  // Accept the shuffle: reply with a passive sample of the same size, then
  // integrate the received identifiers.
  if (msg.origin() != id()) {
    const std::vector<net::NodeId> reply_sample =
        rng_.sample(passive_candidates(), msg.sample().size());
    network().send_datagram(
        id(), msg.origin(), net::make_message<HpvShuffleReply>(reply_sample),
        kTc);
    integrate_shuffle_sample(msg.sample(), {});
  }
}

void HyParView::integrate_shuffle_sample(
    const std::vector<net::NodeId>& sample,
    const std::vector<net::NodeId>& sent) {
  std::size_t sent_cursor = 0;
  for (const net::NodeId candidate : sample) {
    if (candidate == id()) continue;
    if (links_.find(candidate) != links_.end()) continue;
    if (passive_.count(candidate) > 0) continue;
    if (passive_.size() >= config_.passive_size) {
      // Prefer evicting entries we just shipped to the shuffle partner.
      bool evicted = false;
      while (sent_cursor < sent.size()) {
        const net::NodeId victim = sent[sent_cursor++];
        if (passive_.erase(victim) > 0) {
          evicted = true;
          break;
        }
      }
      if (!evicted) {
        const std::vector<net::NodeId> pool(passive_.begin(), passive_.end());
        passive_.erase(rng_.pick(pool));
      }
    }
    passive_.insert(candidate);
  }
}

WatermarkSnapshot HyParView::current_watermarks() const {
  if (!watermark_provider_) return nullptr;
  return std::make_shared<const std::vector<AppWatermark>>(
      watermark_provider_());
}

void HyParView::notify_watermarks(net::NodeId from,
                                  const std::vector<AppWatermark>& entries) {
  if (listener_ == nullptr) return;
  for (const AppWatermark& entry : entries) {
    listener_->on_neighbor_watermark(from, entry.stream, entry.watermark,
                                     entry.aux);
  }
}

void HyParView::handle_keepalive(net::ConnectionId conn, net::NodeId from,
                                 const HpvKeepAlive& msg) {
  notify_watermarks(from, msg.watermarks());
  transport_.send(conn, id(),
                  net::make_message<HpvKeepAliveReply>(msg.probe_id(),
                                                      current_watermarks()),
                  kTc);
}

void HyParView::handle_keepalive_reply(net::NodeId from,
                                       const HpvKeepAliveReply& msg) {
  notify_watermarks(from, msg.watermarks());
  const auto it = links_.find(from);
  if (it == links_.end()) return;
  Link& link = it->second;
  if (link.outstanding_probe != msg.probe_id()) return;
  link.outstanding_probe = 0;
  link.missed_probes = 0;
  const double sample_us =
      static_cast<double>((now() - link.probe_sent_at).us());
  if (link.rtt_ewma_us < 0.0) {
    link.rtt_ewma_us = sample_us;
  } else {
    link.rtt_ewma_us = (1.0 - config_.rtt_alpha) * link.rtt_ewma_us +
                       config_.rtt_alpha * sample_us;
  }
}

// --- View management --------------------------------------------------------

void HyParView::establish(net::NodeId peer, net::ConnectionId conn) {
  Link& link = links_[peer];
  link.conn = conn;
  const bool was_established = link.state == LinkState::kEstablished;
  link.state = LinkState::kEstablished;
  passive_.erase(peer);
  if (!was_established) {
    const auto pos =
        std::lower_bound(established_.begin(), established_.end(), peer);
    established_.insert(pos, peer);
    if (listener_ != nullptr) listener_->on_neighbor_up(peer);
  }
}

void HyParView::drop_active(net::NodeId peer, NeighborLossReason reason,
                            bool close_conn) {
  const auto it = links_.find(peer);
  if (it == links_.end()) return;
  const bool was_established = it->second.state == LinkState::kEstablished;
  const net::ConnectionId conn = it->second.conn;
  links_.erase(it);
  if (was_established) {
    const auto pos =
        std::lower_bound(established_.begin(), established_.end(), peer);
    if (pos != established_.end() && *pos == peer) established_.erase(pos);
  }
  if (close_conn) transport_.close(conn, id());
  if (was_established && listener_ != nullptr) {
    listener_->on_neighbor_down(peer, reason);
  }
}

void HyParView::evict_if_needed(net::NodeId keep, std::size_t threshold) {
  while (active_count() > threshold) {
    ++counters_.evictions;
    std::vector<net::NodeId> peers = established_;
    // The node just accommodated stays (the joiner displaces someone else).
    if (peers.size() > 1 && keep.valid()) {
      peers.erase(std::remove(peers.begin(), peers.end(), keep), peers.end());
    }
    const net::NodeId victim = rng_.pick(peers);
    send_control(victim, net::make_message<HpvDisconnect>());
    drop_active(victim, NeighborLossReason::kEvicted, /*close_conn=*/true);
    add_passive(victim);
  }
}

void HyParView::maybe_promote_replacement() {
  // Replacements are only sought below the *target* size; between target and
  // target × expansion the view absorbs losses without action (§II-A).
  std::size_t in_progress = 0;
  for (const auto& [peer, link] : links_) {
    if (link.state != LinkState::kEstablished) ++in_progress;
  }
  while (active_count() + in_progress < config_.active_size) {
    const std::vector<net::NodeId> candidates = passive_candidates();
    if (candidates.empty()) return;
    const net::NodeId candidate = rng_.pick(candidates);
    ++counters_.promotions;
    dial(candidate, active_count() == 0 ? DialPurpose::kNeighborHigh
                                        : DialPurpose::kNeighborLow);
    ++in_progress;
  }
}

void HyParView::add_passive(net::NodeId peer) {
  if (peer == id() || links_.find(peer) != links_.end()) return;
  if (passive_.count(peer) > 0) return;
  if (passive_.size() >= config_.passive_size) {
    const std::vector<net::NodeId> pool(passive_.begin(), passive_.end());
    passive_.erase(rng_.pick(pool));
  }
  passive_.insert(peer);
}

void HyParView::dial(net::NodeId peer, DialPurpose purpose) {
  BRISA_ASSERT(peer != id());
  if (links_.find(peer) != links_.end()) return;
  if (!alive()) return;
  Link link;
  link.conn = transport_.connect(id(), peer);
  link.state = LinkState::kDialing;
  link.purpose = purpose;
  links_.emplace(peer, link);
}

void HyParView::send_control(net::NodeId peer, net::MessagePtr message) {
  const auto it = links_.find(peer);
  if (it == links_.end() || it->second.state != LinkState::kEstablished) {
    return;
  }
  transport_.send(it->second.conn, id(), std::move(message), kTc);
}

std::vector<net::NodeId> HyParView::passive_candidates() const {
  return {passive_.begin(), passive_.end()};
}

std::size_t HyParView::active_count() const { return established_.size(); }

std::vector<net::NodeId> HyParView::passive_view() const {
  return passive_candidates();
}

// --- Timers -----------------------------------------------------------------

void HyParView::on_shuffle_timer() {
  const std::vector<net::NodeId> peers = established_peers();
  if (peers.empty()) {
    // Isolated node: promote from the passive view, or — with nothing left
    // at all — fall back to re-joining through the original contact.
    maybe_promote_replacement();
    if (links_.empty() && passive_.empty() && rejoin_contact_.valid() &&
        rejoin_contact_ != id()) {
      dial(rejoin_contact_, DialPurpose::kJoin);
    }
    return;
  }
  ++counters_.shuffles_sent;
  std::vector<net::NodeId> sample;
  sample.push_back(id());
  for (const net::NodeId peer :
       rng_.sample(peers, config_.shuffle_active_sample)) {
    sample.push_back(peer);
  }
  for (const net::NodeId peer :
       rng_.sample(passive_candidates(), config_.shuffle_passive_sample)) {
    sample.push_back(peer);
  }
  last_shuffle_sent_ = sample;
  send_control(rng_.pick(peers),
               net::make_message<HpvShuffle>(id(), config_.shuffle_ttl,
                                            std::move(sample)));
}

void HyParView::on_keepalive_timer() {
  // One provider call per tick; each link's probe shares the snapshot by
  // refcount instead of copying the entries.
  const WatermarkSnapshot watermarks = current_watermarks();
  // Collect first: fail_link mutates links_.
  std::vector<net::NodeId> timed_out;
  for (auto&& [peer, link] : links_) {
    if (link.state != LinkState::kEstablished) continue;
    if (link.outstanding_probe != 0) {
      ++link.missed_probes;
      if (link.missed_probes >= config_.keepalive_miss_limit) {
        timed_out.push_back(peer);
        continue;
      }
    }
    const std::uint64_t probe = next_probe_id_++;
    link.outstanding_probe = probe;
    link.probe_sent_at = now();
    transport_.send(link.conn, id(),
                    net::make_message<HpvKeepAlive>(probe, watermarks),
                    kTc);
  }
  for (const net::NodeId peer : timed_out) fail_link(peer);
}

void HyParView::fail_link(net::NodeId peer) {
  ++counters_.failures_detected;
  passive_.erase(peer);
  drop_active(peer, NeighborLossReason::kFailed, /*close_conn=*/true);
  maybe_promote_replacement();
}

}  // namespace brisa::membership
