// Parent selection strategies (§II-E and the §IV perspectives).
//
// A strategy ranks eligible parent candidates; lower cost wins. Eligibility
// (cycle safety) is decided by the protocol before candidates reach the
// strategy — strategies only express *preference*.
#pragma once

#include <cstdint>
#include <string>

#include "core/messages.h"
#include "net/node_id.h"
#include "sim/time.h"

namespace brisa::core {

enum class ParentSelectionStrategy : std::uint8_t {
  /// §II-E (1): the first sender wins; duplicates are deactivated.
  kFirstComeFirstPicked,
  /// §II-E (2): lowest keep-alive RTT wins.
  kDelayAware,
  /// §IV (i): highest uptime wins (longer-lived nodes are likelier to stay).
  kGerontocratic,
  /// §IV (iii): lowest out-degree wins (spread the dissemination effort).
  kLoadBalancing,
};

[[nodiscard]] const char* to_string(ParentSelectionStrategy strategy);

/// Parses "first-come", "delay", "gerontocratic", "load"; throws on others.
[[nodiscard]] ParentSelectionStrategy parse_strategy(const std::string& name);

/// Everything a strategy may consult about one candidate.
struct CandidateInfo {
  net::NodeId node;
  /// Keep-alive RTT estimate from the PSS; Duration::max() when unknown.
  sim::Duration rtt = sim::Duration::max();
  /// Cached position metadata (uptime/degree attributes).
  PositionInfo position;
  /// True for the incumbent: a node that is already a parent. First-come
  /// gives incumbents absolute priority.
  bool incumbent = false;
};

/// Cost of adopting this candidate; strictly lower is better. Ties are
/// broken by the caller (deterministically, by node id).
[[nodiscard]] double candidate_cost(ParentSelectionStrategy strategy,
                                    const CandidateInfo& candidate);

/// True when the symmetric-deactivation optimization of §II-E is sound for
/// this strategy (only first-come: under other strategies the duplicate
/// sender may still legitimately pick us as its parent later).
[[nodiscard]] bool allows_symmetric_deactivation(
    ParentSelectionStrategy strategy);

}  // namespace brisa::core
