#include "core/parent_selection.h"

#include <limits>
#include <stdexcept>

namespace brisa::core {

const char* to_string(ParentSelectionStrategy strategy) {
  switch (strategy) {
    case ParentSelectionStrategy::kFirstComeFirstPicked:
      return "first-come";
    case ParentSelectionStrategy::kDelayAware:
      return "delay";
    case ParentSelectionStrategy::kGerontocratic:
      return "gerontocratic";
    case ParentSelectionStrategy::kLoadBalancing:
      return "load";
  }
  return "?";
}

ParentSelectionStrategy parse_strategy(const std::string& name) {
  if (name == "first-come" || name == "first-pick") {
    return ParentSelectionStrategy::kFirstComeFirstPicked;
  }
  if (name == "delay" || name == "delay-aware") {
    return ParentSelectionStrategy::kDelayAware;
  }
  if (name == "gerontocratic" || name == "uptime") {
    return ParentSelectionStrategy::kGerontocratic;
  }
  if (name == "load" || name == "load-balancing") {
    return ParentSelectionStrategy::kLoadBalancing;
  }
  throw std::invalid_argument("unknown parent selection strategy: " + name);
}

double candidate_cost(ParentSelectionStrategy strategy,
                      const CandidateInfo& candidate) {
  switch (strategy) {
    case ParentSelectionStrategy::kFirstComeFirstPicked:
      // Incumbents always beat challengers; among non-incumbents all are
      // equal (the caller's arrival order / id tie-break decides).
      return candidate.incumbent ? 0.0 : 1.0;
    case ParentSelectionStrategy::kDelayAware: {
      // End-to-end objective: the candidate's accumulated delay from the
      // source plus the half-RTT of the final hop. A pure last-hop-greedy
      // rule degenerates into deep nearest-neighbor chains; accumulating
      // per-hop RTTs (which is also how §III-B measures routing delay)
      // makes the emerging tree approximate a shortest-delay tree.
      if (candidate.rtt == sim::Duration::max()) {
        return std::numeric_limits<double>::max();
      }
      const double last_hop = static_cast<double>(candidate.rtt.us());
      if (!candidate.position.known) {
        return 1e12 + last_hop;  // unknown upstream: worst but comparable
      }
      return static_cast<double>(candidate.position.cum_delay_us) + last_hop;
    }
    case ParentSelectionStrategy::kGerontocratic:
      return -static_cast<double>(candidate.position.uptime_s);
    case ParentSelectionStrategy::kLoadBalancing:
      return static_cast<double>(candidate.position.degree);
  }
  return 0.0;
}

bool allows_symmetric_deactivation(ParentSelectionStrategy strategy) {
  return strategy == ParentSelectionStrategy::kFirstComeFirstPicked;
}

}  // namespace brisa::core
