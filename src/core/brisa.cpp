#include "core/brisa.h"

#include <algorithm>

#include "net/message_pool.h"
#include "util/assert.h"
#include "util/logging.h"

namespace brisa::core {

namespace {

constexpr net::TrafficClass kData = net::TrafficClass::kData;
constexpr net::TrafficClass kCtl = net::TrafficClass::kControl;

}  // namespace

BrisaStream::BrisaStream(BrisaEngine& engine, net::StreamId stream,
                         Config config)
    : engine_(engine),
      stream_(stream),
      config_(config),
      // Stream 0 splits exactly like the historical single-stream instance,
      // so single-stream runs keep their RNG trajectory; further streams
      // fold the id into the split key for independent randomness.
      rng_(engine.simulator().rng().split(
          0xB015AULL ^ engine.id().index() ^
          (static_cast<std::uint64_t>(stream) << 32))),
      started_at_(engine.simulator().now()) {
  BRISA_ASSERT_MSG(
      config_.mode == StructureMode::kDag || config_.num_parents == 1,
      "tree mode requires exactly one parent");
  BRISA_ASSERT(config_.num_parents >= 1);
  // Adopt any neighbors that existed before this stream attached.
  for (const net::NodeId peer : pss().view_ref()) links_.try_emplace(peer);
  // Delay-aware refinement (§II-E): keep-alive piggybacked cumulative
  // delays let a node periodically re-evaluate its parent choice against
  // fresher estimates — the continuing optimization the paper attributes to
  // measuring RTTs at the HyParView level.
  if (config_.strategy == ParentSelectionStrategy::kDelayAware &&
      config_.mode == StructureMode::kTree && config_.prune) {
    every(config_.refine_period, [this]() {
      if (is_source_ || !position_known_ || repair_.has_value()) return;
      if (parents_.empty()) return;
      const net::NodeId parent = *parents_.begin();
      const double parent_cost =
          candidate_cost(config_.strategy, make_candidate(parent, true));
      net::NodeId best;
      double best_cost = parent_cost;
      for (const net::NodeId peer : pss().view_ref()) {
        if (parents_.count(peer) > 0) continue;
        const auto it = links_.find(peer);
        if (it == links_.end()) continue;
        // Rank by the keep-alive-fresh cumulative delay; cycle safety is
        // confirmed by the resume/ack handshake, not the stale path cache.
        if (!it->second.ka_cum_fresh && !it->second.position.known) continue;
        const sim::Duration rtt = pss().rtt_estimate(peer);
        if (rtt == sim::Duration::max()) continue;
        const double cost =
            static_cast<double>(it->second.position.cum_delay_us) +
            static_cast<double>(rtt.us());
        if (cost < best_cost) {
          best_cost = cost;
          best = peer;
        }
      }
      BRISA_TRACE("brisa") << this->id() << " refine check: parent_cost="
                           << parent_cost << " best_cost=" << best_cost
                           << " best=" << best;
      // Switch only for a clear win; hysteresis prevents oscillation.
      if (best.valid() && best_cost < parent_cost * 0.9) {
        start_repair_with_kind(RepairKind::kRefine, /*allow_soft=*/true,
                               net::NodeId::invalid());
        if (repair_.has_value()) {
          repair_->pending_candidates = {best};
          try_next_repair_candidate();
        }
      }
    });
  }

  // Starvation surveillance (§II-F fallback): keep-alive watermarks reveal
  // when the stream has advanced at our neighbors while our own parents feed
  // us nothing — the signature of a stale structure (e.g. an adoption cycle
  // of mutually-starved nodes). The remedy is a hard reset through the
  // epidemic substrate.
  every(config_.starvation_check_period, [this]() {
    if (is_source_ || !position_known_ || repair_.has_value()) return;
    if (stats_.delivered == 0 || parents_.empty()) return;
    const std::uint64_t mine =
        delivered_seqs_.empty() ? 0 : delivered_seqs_.max() + 1;
    if (watermark_heard_ <= mine) return;  // nothing newer exists nearby
    if (now() - last_delivery_at_ < config_.starvation_timeout) return;
    stats_.starvation_resets += 1;
    const std::vector<net::NodeId> stale(parents_.begin(), parents_.end());
    for (const net::NodeId parent : stale) deactivate_inbound(parent);
    start_repair_with_kind(RepairKind::kStarvation, /*allow_soft=*/false,
                           net::NodeId::invalid());
  });
  // DAG nodes keep probing for missing parents: bootstrap order or depth
  // false-negatives can leave a node below target even without failures
  // (§II-G: "nodes always obtained the desired number of parents").
  if (config_.mode == StructureMode::kDag && config_.num_parents > 1) {
    every(config_.topup_period, [this]() {
      if (is_source_ || !position_known_ || repair_.has_value()) return;
      if (parents_.size() >= config_.num_parents) return;
      if (network().tx_defer(id())) {
        stats_.rate_deferrals += 1;
        return;
      }
      start_repair_with_kind(RepairKind::kTopUp, /*allow_soft=*/true,
                             net::NodeId::invalid());
    });
  }
}

// --- Engine access shims ------------------------------------------------------

net::NodeId BrisaStream::id() const { return engine_.id(); }
sim::TimePoint BrisaStream::now() const { return engine_.now(); }
membership::PeerSamplingService& BrisaStream::pss() const {
  return engine_.pss();
}
sim::EventId BrisaStream::after(sim::Duration delay, sim::Callback fn) {
  return engine_.after(delay, std::move(fn));
}
sim::PeriodicId BrisaStream::every(sim::Duration period, sim::Callback fn) {
  return engine_.every(period, std::move(fn));
}
void BrisaStream::cancel(sim::EventId event) { engine_.cancel(event); }
net::Network& BrisaStream::network() const { return engine_.network(); }

// --- Source API --------------------------------------------------------------

void BrisaStream::become_source() {
  is_source_ = true;
  position_known_ = true;
  path_ = {id()};
  depth_ = 0;
}

std::uint64_t BrisaStream::broadcast(std::size_t payload_bytes) {
  BRISA_ASSERT_MSG(is_source_, "broadcast() requires become_source()");
  const std::uint64_t seq = next_seq_++;
  delivered_seqs_.insert(seq);
  while (delivered_seqs_.count(contiguous_upto_) > 0) ++contiguous_upto_;
  stats_.delivered += 1;
  stats_.delivery_time[seq] = now();
  store_payload(seq, payload_bytes);
  const BrisaData msg(stream_, seq, payload_bytes, config_.mode,
                      my_position(), /*retransmission=*/false);
  relay(msg, net::NodeId::invalid());
  if (delivery_handler_) delivery_handler_(seq, payload_bytes);
  return seq;
}

// --- Introspection ------------------------------------------------------------

std::vector<net::NodeId> BrisaStream::parents() const {
  return {parents_.begin(), parents_.end()};
}

bool BrisaStream::is_child(net::NodeId peer, const Link& link) const {
  return link.outbound_active && parents_.count(peer) == 0 &&
         pss().is_neighbor(peer);
}

std::vector<net::NodeId> BrisaStream::children() const {
  std::vector<net::NodeId> out;
  for (const auto& [peer, link] : links_) {
    if (is_child(peer, link)) out.push_back(peer);
  }
  return out;
}

std::size_t BrisaStream::out_degree() const {
  std::size_t degree = 0;
  for (const auto& [peer, link] : links_) {
    if (is_child(peer, link)) ++degree;
  }
  return degree;
}

std::int32_t BrisaStream::depth() const {
  if (!position_known_) return -1;
  if (config_.mode == StructureMode::kTree) {
    return static_cast<std::int32_t>(path_.size()) - 1;
  }
  return depth_;
}

std::uint64_t BrisaStream::max_contiguous_seq() const { return contiguous_upto_; }

membership::AppWatermark BrisaStream::watermark_entry() const {
  return {stream_,
          delivered_seqs_.empty() ? 0 : delivered_seqs_.max() + 1,
          cum_delay_us_};
}

// --- PSS events ----------------------------------------------------------------

void BrisaStream::on_neighbor_up(net::NodeId peer) {
  links_.try_emplace(peer);  // both directions start active (§II-F)
  // A node stuck in hard repair greets every new neighbor with a resume
  // request — the PSS replenishing the view is what unblocks it.
  if (repair_.has_value() && repair_->hard) {
    send_to(peer, net::make_message<BrisaResume>(stream_, true), kCtl);
  }
}

void BrisaStream::on_neighbor_down(net::NodeId peer,
                             membership::NeighborLossReason /*reason*/) {
  const bool was_parent = parents_.erase(peer) > 0;
  links_.erase(peer);
  if (repair_.has_value()) {
    auto& pending = repair_->pending_candidates;
    pending.erase(std::remove(pending.begin(), pending.end(), peer),
                  pending.end());
    if (repair_->awaiting_ack == peer) try_next_repair_candidate();
  }
  if (!was_parent) return;
  stats_.parents_lost += 1;
  if (is_source_) return;
  if (parents_.empty()) {
    stats_.orphan_events += 1;
    if (!repair_.has_value()) start_repair(/*allow_soft=*/true);
    return;
  }
  // DAG with surviving parents: the stream keeps flowing; opportunistically
  // top up to the target parent count.
  if (config_.mode == StructureMode::kDag && !repair_.has_value() &&
      parents_.size() < config_.num_parents) {
    start_repair_with_kind(RepairKind::kTopUp, /*allow_soft=*/true,
                           net::NodeId::invalid());
  }
}

void BrisaStream::on_neighbor_watermark(net::NodeId peer,
                                        std::uint64_t watermark,
                                        std::uint64_t aux) {
  watermark_heard_ = std::max(watermark_heard_, watermark);
  // The aux value is the neighbor's cumulative path delay (§III-B). Keeping
  // the cache fresh is what lets the delay-aware strategy keep refining
  // after the bootstrap duplicates dry up — even for neighbors whose full
  // position (path) we never saw.
  const auto it = links_.find(peer);
  if (it != links_.end()) {
    it->second.position.cum_delay_us =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(aux, 0xffffffff));
    it->second.ka_cum_fresh = true;
    it->second.position_updated_at = now();
  }
}

// --- Data path -----------------------------------------------------------------

void BrisaStream::handle_data(net::NodeId from, const BrisaData& msg) {
  auto [it, inserted] = links_.try_emplace(from);
  Link& link = it->second;
  record_position(from, msg.sender_position());
  link.seen_data = true;

  const bool duplicate = delivered_seqs_.count(msg.seq()) > 0;

  if (msg.retransmission()) {
    stats_.retransmissions_received += 1;
    if (!duplicate) deliver_and_relay(from, msg);
    return;
  }

  stats_.receptions_per_seq[msg.seq()] += 1;

  // DAG depth maintenance (§II-G): receiving from a node at our own depth or
  // deeper pushes us one level down. A parent that keeps forcing bumps is in
  // a feedback loop with us (a depth-tag false negative turned cycle), so
  // after a bounded number of bumps the link is treated as a detected cycle
  // and deactivated — the DAG analogue of §II-D's steady-state detection.
  if (config_.mode == StructureMode::kDag && position_known_ &&
      parents_.count(from) > 0 && msg.sender_position().known &&
      msg.sender_position().depth >= depth_) {
    depth_ = msg.sender_position().depth + 1;
    // Cumulative count: in a cycle the bumps may alternate with quiet
    // receptions as the inflated depths circulate, so the counter must
    // never reset.
    if (++link.depth_bumps > kMaxDepthBumpsPerParent) {
      stats_.cycle_rejections += 1;
      deactivate_inbound(from);
      if (parents_.empty() && !repair_.has_value() && !is_source_) {
        // Orphaned by the cycle guard rather than by a failure; still an
        // orphan event, so the Table I accounting (repairs <= orphanings)
        // stays consistent on every trajectory.
        stats_.orphan_events += 1;
        start_repair(/*allow_soft=*/true);
      }
    }
  }

  if (!duplicate) {
    // Tree steady-state cycle detection (§II-D): a parent whose path now
    // includes us signals a stale structure — drop it and repair.
    if (config_.prune && config_.mode == StructureMode::kTree &&
        parents_.count(from) > 0 &&
        !position_eligible(from, msg.sender_position())) {
      stats_.cycle_rejections += 1;
      deactivate_inbound(from);
      deliver_and_relay(from, msg);
      if (parents_.empty() && !repair_.has_value()) {
        stats_.orphan_events += 1;  // cycle-orphaned (see the DAG guard)
        start_repair(/*allow_soft=*/true);
      }
      return;
    }
    if (config_.prune && parents_.count(from) == 0) {
      if (parents_.size() < config_.num_parents) {
        // Still collecting parents: the sender is a candidate (§II-C).
        prune_with(from);
      } else {
        // Parents are full and someone else relays to us (repair spillover,
        // a new joiner, an in-flight race). Strategy re-selection only
        // happens on *duplicates* (§II-C) — fresh data from a non-parent
        // just means its outbound link to us should be off.
        deactivate_inbound(from);
      }
    } else if (parents_.count(from) > 0 &&
               config_.mode == StructureMode::kTree &&
               msg.sender_position().known) {
      // Refresh our path: upstream repairs may have moved the parent.
      adopt_position_from(from, msg.sender_position());
    }
    deliver_and_relay(from, msg);
    if (repair_.has_value()) {
      const std::size_t needed =
          repair_kind_ == RepairKind::kTopUp ? config_.num_parents : 1;
      if (parents_.size() >= needed) finish_repair(from);
    }
    return;
  }

  // Duplicate reception: the structure-emergence trigger (§II-C).
  stats_.duplicates += 1;
  if (!config_.prune) return;
  if (parents_.count(from) > 0) return;  // expected copies from DAG parents
  if (!link.inbound_active) return;      // deactivation already in flight
  prune_with(from);
}

void BrisaStream::deliver_and_relay(net::NodeId from, const BrisaData& msg) {
  // Flood mode never adopts parents, but Fig 9 still needs the cumulative
  // path RTT of the delivery paths: accumulate it per first reception.
  if (!config_.prune && !msg.retransmission()) {
    const sim::Duration rtt = pss().rtt_estimate(from);
    const std::uint64_t hop_us =
        rtt == sim::Duration::max()
            ? 100'000
            : static_cast<std::uint64_t>(rtt.us());
    cum_delay_us_ = msg.sender_position().cum_delay_us + hop_us;
  }
  delivered_seqs_.insert(msg.seq());
  while (delivered_seqs_.count(contiguous_upto_) > 0) ++contiguous_upto_;
  stats_.delivered += 1;
  stats_.delivery_time[msg.seq()] = now();
  last_delivery_at_ = now();
  buffer_payload(msg);
  if (delivery_handler_) delivery_handler_(msg.seq(), msg.payload_bytes());
  if (!msg.retransmission()) {
    const BrisaData relayed(stream_, msg.seq(), msg.payload_bytes(),
                            config_.mode, my_position(),
                            /*retransmission=*/false);
    relay(relayed, from);
  }
  // Gap surveillance: a hole below the newest delivery means some message
  // was lost in a deactivation/swap race. Give in-flight copies a moment,
  // then pull the hole from a parent's buffer (§II-F recovery, generalized
  // beyond repairs).
  if (contiguous_upto_ <= msg.seq() && !gap_probe_armed_) arm_gap_probe();
}

void BrisaStream::arm_gap_probe() {
  // Re-arms itself until the hole closes: the first pull can legitimately
  // fail when the parent is missing the same suffix (it heals from *its*
  // parent one probe period earlier), and an interior hole is invisible to
  // starvation surveillance — keep-alive watermarks advertise the newest
  // delivery, which the hole sits below. Retrying at the probe cadence
  // walks the recovery down the tree one level per period.
  gap_probe_armed_ = true;
  after(config_.gap_probe_delay, [this]() {
    gap_probe_armed_ = false;
    if (delivered_seqs_.empty()) return;
    const std::uint64_t newest = delivered_seqs_.max();
    if (contiguous_upto_ > newest) return;  // gap healed meanwhile
    if (parents_.empty()) return;           // repair flow handles it
    // Sequences more than one retention window below the newest delivery
    // are unrecoverable by design: no parent's bounded retransmit buffer
    // still holds them (a late joiner's pre-join prefix). Pursue only the
    // in-window part of the hole, and stop probing — rather than pulling a
    // full buffer of duplicates every period forever — once that part has
    // closed.
    const std::uint64_t floor =
        newest + 1 >= config_.retransmit_buffer
            ? newest + 1 - config_.retransmit_buffer
            : 0;
    std::uint64_t target = std::max(contiguous_upto_, floor);
    while (target <= newest && delivered_seqs_.count(target) > 0) ++target;
    if (target > newest) return;  // in-window hole closed
    if (network().tx_defer(id())) {
      // Send side is backlogged: pulling a window of retransmissions now
      // would only deepen the queue. Re-arm and retry once it drains.
      stats_.rate_deferrals += 1;
      arm_gap_probe();
      return;
    }
    stats_.gap_recoveries += 1;
    send_to(*parents_.begin(), make_retransmit_request(target), kCtl);
    arm_gap_probe();
  });
}

void BrisaStream::prune_with(net::NodeId duplicate_sender) {
  Link& link = links_[duplicate_sender];
  const PositionInfo& sender_pos = link.position;

  if (!position_eligible(duplicate_sender, sender_pos)) {
    stats_.cycle_rejections += 1;
    deactivate_inbound(duplicate_sender);
    return;
  }

  if (parents_.size() < config_.num_parents) {
    // Still collecting parents (bootstrap, or DAG below target).
    parents_.insert(duplicate_sender);
    link.inbound_active = true;
    if (!position_known_ || config_.mode == StructureMode::kTree) {
      adopt_position_from(duplicate_sender, sender_pos);
    } else if (config_.mode == StructureMode::kDag && sender_pos.known &&
               sender_pos.depth >= depth_) {
      depth_ = sender_pos.depth + 1;
    }
    note_structure_stability();
    return;
  }

  // Full house: rank the challenger against the incumbents; evict the worst.
  CandidateInfo challenger = make_candidate(duplicate_sender, false);
  net::NodeId victim = duplicate_sender;
  double worst_cost = candidate_cost(config_.strategy, challenger);
  for (const net::NodeId parent : parents_) {
    const CandidateInfo incumbent = make_candidate(parent, true);
    const double cost = candidate_cost(config_.strategy, incumbent);
    // Strictly-greater comparison: on ties the challenger loses, which is
    // exactly first-come-first-picked semantics.
    if (cost > worst_cost) {
      worst_cost = cost;
      victim = parent;
    }
  }

  if (victim == duplicate_sender) {
    deactivate_inbound(duplicate_sender);
    // §II-E symmetric deactivation: the duplicate sender had the message
    // before our relay could reach it, so we cannot be its parent either.
    if (config_.symmetric_deactivation &&
        allows_symmetric_deactivation(config_.strategy) &&
        config_.mode == StructureMode::kTree) {
      links_[duplicate_sender].outbound_active = false;
    }
    return;
  }

  // The challenger beats a current parent: swap.
  deactivate_inbound(victim);
  parents_.insert(duplicate_sender);
  links_[duplicate_sender].inbound_active = true;
  if (config_.mode == StructureMode::kTree) {
    adopt_position_from(duplicate_sender, sender_pos);
  }
  note_structure_stability();
}

void BrisaStream::deactivate_inbound(net::NodeId peer) {
  Link& link = links_[peer];
  link.inbound_active = false;
  parents_.erase(peer);
  stats_.deactivations_sent += 1;
  if (!stats_.first_deactivation_at.has_value()) {
    stats_.first_deactivation_at = now();
  }
  send_to(peer,
          net::make_message<BrisaDeactivate>(stream_, config_.mode,
                                            my_position()),
          kCtl);
  note_structure_stability();
}

bool BrisaStream::position_eligible(net::NodeId candidate,
                              const PositionInfo& position) const {
  if (!position.known) return false;
  if (config_.mode == StructureMode::kTree) {
    return std::find(position.path.begin(), position.path.end(), id()) ==
           position.path.end();
  }
  // DAG (§II-G): candidates at a depth not greater than ours, with a
  // deterministic id tie-break at equal depth. During the bootstrap flood a
  // wave of equal-depth nodes relays the same message to each other; without
  // the tie-break both sides of such a pair adopt each other simultaneously
  // and their depth tags ratchet forever. With it, any would-be cycle of
  // adoptions needs strictly decreasing ids around the loop — impossible.
  if (depth_ < 0) return true;
  if (position.depth < depth_) return true;
  return position.depth == depth_ && candidate.index() < id().index();
}

void BrisaStream::adopt_position_from(net::NodeId parent,
                                const PositionInfo& parent_pos) {
  if (!parent_pos.known) return;
  if (config_.mode == StructureMode::kTree) {
    path_ = parent_pos.path;
    path_.push_back(id());
  } else {
    depth_ = std::max(depth_, parent_pos.depth + 1);
  }
  // Accumulate the hop cost for the delay-aware metric. Units follow
  // §III-B: *full* round-trip times summed per hop (the paper's Fig 9
  // y-axis), measured from the PSS keep-alives.
  const sim::Duration rtt = pss().rtt_estimate(parent);
  const std::uint64_t hop_us =
      rtt == sim::Duration::max()
          ? 100'000  // no estimate yet: assume a generic 100 ms RTT
          : static_cast<std::uint64_t>(rtt.us());
  cum_delay_us_ = parent_pos.cum_delay_us + hop_us;
  position_known_ = true;
}

void BrisaStream::record_position(net::NodeId peer, const PositionInfo& position) {
  Link& link = links_[peer];
  if (!position.known) return;
  link.position = position;
  link.position_updated_at = now();
}

PositionInfo BrisaStream::my_position() const {
  PositionInfo pos;
  pos.known = position_known_;
  if (config_.mode == StructureMode::kTree) {
    pos.path = path_;
  }
  pos.depth = depth_;
  pos.uptime_s = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, (now() - started_at_).us() / 1'000'000));
  pos.degree = static_cast<std::uint16_t>(
      std::min<std::size_t>(out_degree(), 0xffff));
  pos.cum_delay_us = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cum_delay_us_, 0xffffffffULL));
  return pos;
}

CandidateInfo BrisaStream::make_candidate(net::NodeId peer, bool incumbent) const {
  CandidateInfo info;
  info.node = peer;
  info.rtt = pss().rtt_estimate(peer);
  const auto it = links_.find(peer);
  if (it != links_.end()) info.position = it->second.position;
  info.incumbent = incumbent;
  return info;
}

void BrisaStream::note_structure_stability() {
  if (stats_.structure_stable_at.has_value()) return;
  if (!stats_.first_deactivation_at.has_value()) return;
  std::size_t active_senders = 0;
  for (const auto& [peer, link] : links_) {
    if (link.seen_data && link.inbound_active) ++active_senders;
  }
  if (active_senders <= config_.num_parents) {
    stats_.structure_stable_at = now();
  }
}

// --- Control path ----------------------------------------------------------------

void BrisaStream::handle_deactivate(net::NodeId from, const BrisaDeactivate& msg) {
  record_position(from, msg.sender_position());
  links_[from].outbound_active = false;
  stats_.deactivations_received += 1;
}

void BrisaStream::handle_resume(net::NodeId from, const BrisaResume& msg) {
  links_[from].outbound_active = true;
  if (msg.want_ack()) {
    // A node never serves its own parent: answering with a valid position
    // would let the requester adopt us right back, closing a two-cycle.
    PositionInfo pos = my_position();
    if (parents_.count(from) > 0) pos.known = false;
    send_to(from,
            net::make_message<BrisaResumeAck>(stream_, config_.mode,
                                             std::move(pos)),
            kCtl);
  }
}

void BrisaStream::handle_resume_ack(net::NodeId from, const BrisaResumeAck& msg) {
  record_position(from, msg.responder_position());
  if (!repair_.has_value()) return;
  // Soft repair awaits one specific candidate; hard repair broadcast resumes
  // to every neighbor and adopts the first eligible responder.
  const bool relevant = repair_->awaiting_ack == from || repair_->hard;
  if (!relevant) return;
  bool eligible = msg.responder_position().known &&
                  position_eligible(from, msg.responder_position());
  // A DAG repair may descend to serve under an equal-depth responder
  // (an equal-depth node cannot be a descendant while depths are current).
  // An *orphan* with nothing shallower left may even descend below a deeper
  // responder — the §II-F soft repair lets the node take any active-view
  // neighbor; the rare adoption of a true descendant forms a cycle that the
  // bump guard / starvation reset dismantles within seconds.
  if (!eligible && config_.mode == StructureMode::kDag &&
      repair_kind_ != RepairKind::kRefine &&
      msg.responder_position().known && position_known_) {
    const std::int32_t responder_depth = msg.responder_position().depth;
    const bool orphaned = parents_.empty();
    if (responder_depth == depth_ || (orphaned && responder_depth > depth_)) {
      depth_ = std::max(depth_, responder_depth) + 1;
      eligible = true;
    }
  }
  if (eligible) {
    BRISA_TRACE("brisa") << id() << " adopts " << from << " via resume-ack";
    // A tree holds exactly one parent: a refine adoption displaces the
    // incumbent.
    if (config_.mode == StructureMode::kTree) {
      const std::vector<net::NodeId> old(parents_.begin(), parents_.end());
      for (const net::NodeId prev : old) {
        if (prev != from) deactivate_inbound(prev);
      }
    }
    parents_.insert(from);
    links_[from].inbound_active = true;
    adopt_position_from(from, msg.responder_position());
    finish_repair(from);
    return;
  }
  BRISA_TRACE("brisa") << id() << " resume-ack from " << from
                       << " ineligible (known="
                       << msg.responder_position().known
                       << " depth=" << msg.responder_position().depth
                       << " mine=" << depth_ << ")";
  if (repair_->hard) return;  // keep waiting for a better responder
  if (repair_kind_ == RepairKind::kRefine) {
    // The incumbent still serves us; the candidate just was not suitable.
    repair_.reset();
    return;
  }
  // Stale cache: the candidate cannot serve us. Undo and move on.
  deactivate_inbound(from);
  try_next_repair_candidate();
}

void BrisaStream::handle_reactivate_order(net::NodeId from) {
  // Only meaningful coming from a node we depend on (§II-F: the order stops
  // at nodes that can replace the sender).
  if (parents_.count(from) == 0) return;
  parents_.erase(from);
  if (!parents_.empty()) return;  // DAG: other parents still feed us
  if (repair_.has_value()) return;
  stats_.reactivate_orders_received += 1;
  start_repair_with_kind(RepairKind::kOrderRebuild, /*allow_soft=*/true,
                         /*exclude=*/from);
}

void BrisaStream::handle_retransmit_request(net::NodeId from,
                                      const BrisaRetransmitRequest& msg) {
  links_[from].outbound_active = true;
  for (const auto& [seq, payload_bytes] : payload_buffer_) {
    if (seq < msg.from_seq()) continue;
    if (msg.known(seq)) continue;  // requester already holds it (Bloom form)
    stats_.retransmissions_served += 1;
    send_to(from,
            net::make_message<BrisaData>(stream_, seq, payload_bytes,
                                        config_.mode, my_position(),
                                        /*retransmission=*/true),
            kData);
  }
}

// --- Repair (§II-F) -----------------------------------------------------------------

void BrisaStream::start_repair(bool allow_soft) {
  start_repair_with_kind(RepairKind::kOrphanFailure, allow_soft,
                         net::NodeId::invalid());
}

void BrisaStream::start_repair_with_kind(RepairKind kind, bool allow_soft,
                                   net::NodeId exclude) {
  RepairState state;
  state.started_at = now();
  state.hard = false;
  state.awaiting_ack = net::NodeId::invalid();
  if (allow_soft) {
    state.pending_candidates = soft_repair_candidates();
    if (exclude.valid()) {
      auto& cands = state.pending_candidates;
      cands.erase(std::remove(cands.begin(), cands.end(), exclude),
                  cands.end());
    }
  }
  repair_ = state;
  repair_kind_ = kind;
  try_next_repair_candidate();
}

void BrisaStream::try_next_repair_candidate() {
  if (!repair_.has_value()) return;
  cancel(repair_->timeout_event);  // previous candidate's timer, if any
  repair_->awaiting_ack = net::NodeId::invalid();
  if (repair_->pending_candidates.empty()) {
    BRISA_TRACE("brisa") << id() << " repair candidates exhausted";
    escalate_to_hard_repair();
    return;
  }
  const net::NodeId candidate = repair_->pending_candidates.front();
  BRISA_TRACE("brisa") << id() << " repair: trying candidate " << candidate;
  repair_->pending_candidates.erase(repair_->pending_candidates.begin());
  repair_->awaiting_ack = candidate;
  const std::uint64_t token = ++repair_token_counter_;
  repair_->timeout_token = token;
  send_to(candidate, net::make_message<BrisaResume>(stream_, true),
          kCtl);
  // The token check stays as a second line of defense: a handle is only as
  // fresh as the RepairState that stored it.
  repair_->timeout_event = after(config_.repair_ack_timeout, [this, token]() {
    if (repair_.has_value() && repair_->timeout_token == token &&
        repair_->awaiting_ack.valid()) {
      try_next_repair_candidate();
    }
  });
}

void BrisaStream::escalate_to_hard_repair() {
  if (!repair_.has_value()) return;
  if (repair_kind_ == RepairKind::kRefine) {
    repair_.reset();  // refinement is opportunistic; no fallback
    return;
  }
  if (repair_kind_ == RepairKind::kTopUp) {
    // Out of strictly-eligible candidates. A node may voluntarily descend
    // one level to adopt an equal-depth neighbor (descendants are strictly
    // deeper, so this cannot adopt its own subtree); the resume/ack
    // handshake still verifies the candidate's current position. One
    // demotion per attempt keeps depths from drifting.
    if (config_.mode == StructureMode::kDag && !repair_->demoted &&
        position_known_) {
      std::vector<net::NodeId> equal_depth;
      for (const net::NodeId peer : pss().view_ref()) {
        if (parents_.count(peer) > 0) continue;
        const auto it = links_.find(peer);
        if (it == links_.end() || !it->second.position.known) continue;
        if (it->second.position.depth == depth_) equal_depth.push_back(peer);
      }
      if (!equal_depth.empty()) {
        repair_->demoted = true;
        depth_ += 1;
        repair_->pending_candidates = std::move(equal_depth);
        try_next_repair_candidate();
        return;
      }
    }
    // Best-effort only: a DAG node that cannot find an extra parent keeps
    // running on its remaining ones (observed in Fig 10's percentiles).
    repair_.reset();
    return;
  }
  repair_->hard = true;
  repair_->pending_candidates.clear();
  repair_->awaiting_ack = net::NodeId::invalid();

  // Snapshot children before resetting state: the re-activation order goes
  // to the subtree we were feeding.
  const std::vector<net::NodeId> order_targets = children();

  // Become a fresh node (§II-F): forget the position used by cycle
  // detection and re-activate every inbound link.
  position_known_ = false;
  path_.clear();
  depth_ = -1;
  for (auto&& [peer, link] : links_) link.inbound_active = true;

  net::MessagePtr resume;
  for (const net::NodeId peer : pss().view_ref()) {
    if (resume == nullptr) {
      resume = net::make_message<BrisaResume>(stream_, true);
    }
    send_to(peer, resume, kCtl);
  }
  net::MessagePtr order;
  for (const net::NodeId child : order_targets) {
    stats_.reactivate_orders_sent += 1;
    if (order == nullptr) {
      order = net::make_message<BrisaReactivateOrder>(stream_);
    }
    send_to(child, order, kCtl);
  }
  arm_hard_repair_retry();
}

void BrisaStream::arm_hard_repair_retry() {
  // Liveness guard: the hard-repair resume broadcast is a one-shot, and
  // every neighbor may legitimately answer "unknown position" if it still
  // counted us as a parent when the resume arrived (it refuses to serve its
  // own parent, §II-F). The re-activation orders break that dependency a
  // round trip later — so a node whose first broadcast raced the orders
  // would wait forever. Re-probe the view until a parent is found; each
  // retry is one small control message per neighbor.
  const std::uint64_t token = ++repair_token_counter_;
  repair_->timeout_token = token;
  repair_->timeout_event = after(config_.repair_ack_timeout, [this, token]() {
    if (!repair_.has_value() || !repair_->hard) return;
    if (repair_->timeout_token != token) return;
    stats_.hard_repair_retries += 1;
    net::MessagePtr resume;
    for (const net::NodeId peer : pss().view_ref()) {
      if (resume == nullptr) {
        resume = net::make_message<BrisaResume>(stream_, true);
      }
      send_to(peer, resume, kCtl);
    }
    arm_hard_repair_retry();
  });
}

void BrisaStream::finish_repair(net::NodeId new_parent) {
  if (!repair_.has_value()) return;
  cancel(repair_->timeout_event);
  const sim::Duration delay = now() - repair_->started_at;
  if (repair_kind_ == RepairKind::kOrphanFailure) {
    if (repair_->hard) {
      stats_.hard_repairs += 1;
      stats_.hard_repair_delays.push_back(delay);
    } else {
      stats_.soft_repairs += 1;
      stats_.soft_repair_delays.push_back(delay);
    }
  } else if (repair_kind_ == RepairKind::kOrderRebuild) {
    stats_.order_rebuilds += 1;
  } else if (repair_kind_ == RepairKind::kTopUp) {
    stats_.parent_topups += 1;
  } else if (repair_kind_ == RepairKind::kRefine) {
    stats_.refinements += 1;
  }
  repair_.reset();
  request_missing(new_parent);
}

void BrisaStream::request_missing(net::NodeId parent) {
  send_to(parent, make_retransmit_request(contiguous_upto_), kCtl);
}

std::vector<net::NodeId> BrisaStream::soft_repair_candidates() const {
  // Candidate order (§II-F, with the keep-alive piggyback optimization that
  // makes every neighbor a potential candidate):
  //   1. neighbors whose cached position is known and eligible, ranked by
  //      the parent-selection strategy;
  //   2. DAG only: known equal-depth neighbors (the ack handshake adopts
  //      them by descending one level);
  //   3. neighbors with unknown position — the resume/ack round trip
  //      fetches their current position and verifies eligibility.
  // Known-ineligible neighbors are excluded outright.
  std::vector<std::pair<double, net::NodeId>> ranked;
  std::vector<net::NodeId> equal_depth;
  std::vector<net::NodeId> unknown;
  for (const net::NodeId peer : pss().view_ref()) {
    const auto it = links_.find(peer);
    if (it == links_.end()) continue;
    if (parents_.count(peer) > 0) continue;
    const PositionInfo& pos = it->second.position;
    if (!pos.known) {
      unknown.push_back(peer);
      continue;
    }
    if (position_eligible(peer, pos)) {
      const CandidateInfo info = make_candidate(peer, false);
      ranked.emplace_back(candidate_cost(config_.strategy, info), peer);
    } else if (config_.mode == StructureMode::kDag && position_known_ &&
               pos.depth == depth_) {
      equal_depth.push_back(peer);
    }
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<net::NodeId> out;
  out.reserve(ranked.size() + equal_depth.size() + unknown.size());
  for (const auto& [cost, peer] : ranked) out.push_back(peer);
  for (const net::NodeId peer : equal_depth) out.push_back(peer);
  for (const net::NodeId peer : unknown) out.push_back(peer);
  return out;
}

// --- Sending helpers ---------------------------------------------------------------

void BrisaStream::send_to(net::NodeId peer, net::MessagePtr message,
                    net::TrafficClass traffic_class) {
  pss().send_app(peer, std::move(message), traffic_class);
}

void BrisaStream::relay(const BrisaData& msg, net::NodeId except) {
  // One pooled copy shared by every receiver: fan-out is a refcount bump
  // per child, not an allocation per child.
  net::MessagePtr shared;
  for (const net::NodeId peer : pss().view_ref()) {
    if (peer == except) continue;
    const auto it = links_.find(peer);
    if (it != links_.end() && !it->second.outbound_active) continue;
    if (shared == nullptr) shared = net::make_message<BrisaData>(msg);
    send_to(peer, shared, kData);
  }
  // Source liveness guard: if every neighbor deactivated us (they all
  // bootstrapped onto other parents — increasingly likely with many
  // concurrent sources sharing one substrate), the stream would be severed
  // at its origin with nobody noticing: receivers cannot gap-probe data
  // they never heard about. The origin may always flood (§II-C): receivers
  // deliver and relay fresh data regardless of their parent set, at the
  // cost of one repeated deactivation per neighbor per message while the
  // out-degree stays zero.
  if (shared == nullptr && is_source_) {
    for (const net::NodeId peer : pss().view_ref()) {
      if (peer == except) continue;
      if (shared == nullptr) shared = net::make_message<BrisaData>(msg);
      send_to(peer, shared, kData);
    }
  }
}

void BrisaStream::buffer_payload(const BrisaData& msg) {
  store_payload(msg.seq(), msg.payload_bytes());
}

void BrisaStream::store_payload(std::uint64_t seq, std::size_t payload_bytes) {
  payload_buffer_.emplace_back(seq, payload_bytes);
  payload_buffer_bytes_ += payload_bytes;
  // Historical count cap — part of baseline behavior, not counted as a
  // limits-layer eviction.
  while (payload_buffer_.size() > config_.retransmit_buffer) {
    payload_buffer_bytes_ -= payload_buffer_.front().second;
    payload_buffer_.pop_front();
  }
  const net::Limits& limits = config_.limits;
  if (!limits.bounded()) return;
  const auto over = [&]() {
    return (limits.store_entries > 0 &&
            payload_buffer_.size() > limits.store_entries) ||
           (limits.store_bytes > 0 &&
            payload_buffer_bytes_ > limits.store_bytes);
  };
  while (over() && !payload_buffer_.empty()) {
    // kDeliveredFirst drops the oldest entry only while it sits below the
    // delivery watermark (children had a full window to pull it); above the
    // watermark it drops the newest instead (drop-tail), preserving the
    // oldest still-unconfirmed seqs a repairing child is most likely to ask
    // for. kOldestFirst always drops the front.
    const bool drop_front =
        limits.eviction == net::EvictionPolicy::kOldestFirst ||
        payload_buffer_.front().first < contiguous_upto_;
    if (drop_front) {
      payload_buffer_bytes_ -= payload_buffer_.front().second;
      payload_buffer_.pop_front();
    } else {
      payload_buffer_bytes_ -= payload_buffer_.back().second;
      payload_buffer_.pop_back();
    }
    stats_.buffer_evictions += 1;
  }
}

net::MessagePtr BrisaStream::make_retransmit_request(std::uint64_t from_seq) {
  if (!config_.limits.bloom_digests || delivered_seqs_.empty()) {
    return net::make_message<BrisaRetransmitRequest>(stream_, from_seq);
  }
  // Out-of-order seqs we already hold at or above from_seq: the parent
  // serves its whole window >= from_seq, so advertising these prunes the
  // retransmissions down to the actual holes plus Bloom false positives.
  std::vector<std::uint64_t> held;
  const std::uint64_t newest = delivered_seqs_.max();
  for (std::uint64_t seq = from_seq; seq <= newest; ++seq) {
    if (delivered_seqs_.count(seq) > 0) held.push_back(seq);
  }
  if (held.empty()) {
    return net::make_message<BrisaRetransmitRequest>(stream_, from_seq);
  }
  // Salted per (node, request) so a false positive — a hole wrongly
  // advertised as held — resolves on the next differently-salted probe.
  const std::uint64_t salt =
      (static_cast<std::uint64_t>(id().index()) << 24) ^ ++digest_rounds_;
  util::BloomFilter digest = util::BloomFilter::with_capacity(
      held.size(), config_.limits.bloom_fp, salt);
  for (const std::uint64_t seq : held) digest.insert(seq);
  return net::make_message<BrisaRetransmitRequest>(stream_, from_seq,
                                                   std::move(digest));
}

}  // namespace brisa::core
