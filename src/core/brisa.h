// BRISA: epidemic dissemination with emergent tree/DAG structures (§II),
// multiplexed as a forest of per-stream structures over one shared PSS.
//
// Two classes split the work:
//
//   * BrisaStream holds everything that is per-stream: parents/children
//     links, path/depth position, dedup and delivery bookkeeping, repair
//     state machines, and Stats. It is a plain state machine — not a
//     net::Process — driven by its engine.
//   * BrisaEngine is the single net::Process + PssListener per node. It owns
//     N BrisaStream instances in a flat vector indexed by StreamId,
//     demultiplexes incoming messages by their stream id, fans membership
//     events out to every stream, and aggregates the per-stream keep-alive
//     watermark entries.
//
// This is the paper's §IV "Multiple Trees" argument made structural: because
// the tree *emerges* from the epidemic substrate, additional trees cost only
// their per-stream state — the membership layer, failure detection, and
// keep-alive probing are shared across the whole forest.
//
// The protocol per stream is unchanged from the single-stream original:
//   * bootstraps by flooding the first stream message over the PSS overlay;
//   * lets each node prune inbound links down to `num_parents` by sending
//     DEACTIVATE messages to duplicate senders (parent selection, §II-C/E);
//   * prevents cycles exactly via path embedding (trees, §II-D) or
//     approximately via depth tags (DAGs, §II-G);
//   * repairs parent failures through the PSS: soft repair re-activates a
//     cached eligible neighbor with one message; hard repair re-floods a
//     bounded region through re-activation orders (§II-F);
//   * recovers messages missed during repair from the new parent's buffer.
//
// Setting `prune = false` disables deactivation entirely, yielding the pure
// flooding baseline of Fig 2 / Fig 9.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/messages.h"
#include "core/parent_selection.h"
#include "membership/peer_sampling.h"
#include "net/network.h"
#include "net/process.h"
#include "sim/rng.h"
#include "util/flat_map.h"
#include "util/flat_seq_map.h"

namespace brisa::core {

class BrisaEngine;

class BrisaStream final {
 public:
  struct Config {
    StructureMode mode = StructureMode::kTree;
    /// Target number of parents p; must be 1 in tree mode (§II-G).
    std::size_t num_parents = 1;
    ParentSelectionStrategy strategy =
        ParentSelectionStrategy::kFirstComeFirstPicked;
    /// false = never deactivate: pure flooding over the PSS (Fig 2 baseline).
    bool prune = true;
    /// §II-E symmetric deactivation (applied only when the strategy allows).
    bool symmetric_deactivation = true;
    /// How many recent payloads each node buffers for child recovery.
    std::size_t retransmit_buffer = 128;
    /// Patience for a BrisaResume acknowledgment before trying the next
    /// candidate (or escalating to hard repair).
    sim::Duration repair_ack_timeout = sim::Duration::milliseconds(500);
    /// How often a DAG node below its parent target probes for another
    /// eligible parent (§II-G acquisition guarantee).
    sim::Duration topup_period = sim::Duration::seconds(5);
    /// Patience before pulling a sequence hole from a parent's buffer
    /// (covers losses from deactivation/swap races).
    sim::Duration gap_probe_delay = sim::Duration::milliseconds(750);
    /// Starvation surveillance (§II-F fallback): when neighbors' keep-alive
    /// watermarks advance past ours and nothing arrives for this long, the
    /// structure above us is stale — reset hard through the substrate.
    sim::Duration starvation_check_period = sim::Duration::seconds(2);
    sim::Duration starvation_timeout = sim::Duration::seconds(4);
    /// Period of the delay-aware parent re-evaluation (tree mode only).
    sim::Duration refine_period = sim::Duration::seconds(5);
    /// Bandwidth-discipline layer ([limits] scenario section): extra bounds
    /// on the retransmit buffer, Bloom digests on retransmit requests, and
    /// gap-probe/topup backoff under send-side congestion. Default = off.
    net::Limits limits;
  };

  /// Per-(node, stream) protocol statistics; the experiment harnesses
  /// aggregate these across nodes into the paper's tables and figures.
  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t deactivations_sent = 0;
    std::uint64_t deactivations_received = 0;
    std::uint64_t cycle_rejections = 0;  ///< senders rejected by cycle check
    std::uint64_t parents_lost = 0;
    std::uint64_t orphan_events = 0;
    std::uint64_t soft_repairs = 0;
    std::uint64_t hard_repairs = 0;
    std::uint64_t hard_repair_retries = 0;  ///< resume re-broadcasts
    std::uint64_t retransmissions_served = 0;
    std::uint64_t retransmissions_received = 0;
    std::uint64_t reactivate_orders_sent = 0;
    std::uint64_t reactivate_orders_received = 0;
    std::uint64_t order_rebuilds = 0;  ///< repairs triggered by orders
    std::uint64_t parent_topups = 0;   ///< DAG nodes regaining parent #p
    std::uint64_t gap_recoveries = 0;  ///< sequence holes pulled from parents
    std::uint64_t starvation_resets = 0;  ///< stale-structure hard resets
    std::uint64_t refinements = 0;  ///< delay-aware parent improvements
    /// Retransmit-buffer entries dropped by the `[limits]` bound (the
    /// built-in retransmit_buffer trim is not counted — it predates the
    /// limits layer and is part of baseline behavior).
    std::uint64_t buffer_evictions = 0;
    /// Gap probes / topups skipped while the local NIC/CPU was overusing.
    std::uint64_t rate_deferrals = 0;
    /// Time from orphaning to regained parenthood, per repair kind.
    std::vector<sim::Duration> soft_repair_delays;
    std::vector<sim::Duration> hard_repair_delays;
    /// Construction-time probes (Fig 13): when this node sent its first
    /// deactivation, and when its inbound links first reached the target.
    std::optional<sim::TimePoint> first_deactivation_at;
    std::optional<sim::TimePoint> structure_stable_at;
    /// Per-sequence reception counts (Fig 2) and delivery instants (Fig 9,
    /// Table II). Flat vectors indexed by sequence: these two are written on
    /// every delivery, and a tree walk per stream message is measurable at
    /// sweep sizes.
    util::FlatSeqMap<std::uint32_t> receptions_per_seq;
    util::FlatSeqMap<sim::TimePoint> delivery_time;
  };

  using DeliveryHandler =
      std::function<void(std::uint64_t seq, std::size_t payload_bytes)>;

  BrisaStream(BrisaEngine& engine, net::StreamId stream, Config config);

  // --- Source API -----------------------------------------------------------

  /// Marks this node as the stream source (depth 0 / path = {self}).
  void become_source();
  [[nodiscard]] bool is_source() const { return is_source_; }

  /// Injects the next stream message; flooding bootstraps the structure on
  /// the first call (§II-C). Returns the sequence number used.
  std::uint64_t broadcast(std::size_t payload_bytes);

  // --- Introspection ---------------------------------------------------------

  [[nodiscard]] net::StreamId stream_id() const { return stream_; }
  [[nodiscard]] std::vector<net::NodeId> parents() const;
  /// Neighbors we actively relay to (outbound-active, non-parent): the
  /// node's out-degree in the emergent structure (Fig 7).
  [[nodiscard]] std::vector<net::NodeId> children() const;
  /// Structure depth: tree = |path|-1, DAG = depth tag; -1 before the first
  /// delivery (Fig 6).
  [[nodiscard]] std::int32_t depth() const;
  [[nodiscard]] const std::vector<net::NodeId>& path() const { return path_; }
  /// Cumulative per-hop RTT from the source (§III-B's routing-delay metric).
  [[nodiscard]] sim::Duration cumulative_path_rtt() const {
    return sim::Duration::microseconds(
        static_cast<std::int64_t>(cum_delay_us_));
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t max_contiguous_seq() const;
  [[nodiscard]] bool repair_in_progress() const {
    return repair_.has_value();
  }

  void set_delivery_handler(DeliveryHandler handler) {
    delivery_handler_ = std::move(handler);
  }

  // --- Events from the engine -------------------------------------------------

  void on_neighbor_up(net::NodeId peer);
  void on_neighbor_down(net::NodeId peer,
                        membership::NeighborLossReason reason);
  void on_neighbor_watermark(net::NodeId peer, std::uint64_t watermark,
                             std::uint64_t aux);

  /// This stream's keep-alive piggyback entry.
  [[nodiscard]] membership::AppWatermark watermark_entry() const;

 private:
  friend class BrisaEngine;  // routes demultiplexed messages to handle_*

  /// Per-neighbor dissemination link state (distinct from the PSS view
  /// entry; §II-C: deactivation does not remove the HyParView link).
  struct Link {
    /// We accept stream traffic from this neighbor (they are a parent or a
    /// not-yet-pruned bootstrap link).
    bool inbound_active = true;
    /// We relay stream traffic to this neighbor.
    bool outbound_active = true;
    /// This neighbor has relayed stream data to us at least once; drives the
    /// Fig 13 construction-time probe.
    bool seen_data = false;
    /// Consecutive §II-G depth bumps this parent caused; a persistent
    /// ratchet marks a depth-tag cycle (see handle_data).
    std::uint32_t depth_bumps = 0;
    /// Last position metadata seen from this neighbor (data messages,
    /// deactivations, resume acks); drives soft repair and strategies.
    PositionInfo position;
    sim::TimePoint position_updated_at;
    /// The cum_delay field has been refreshed by a keep-alive (§II-F
    /// piggyback), even if the rest of the position is stale or unknown.
    bool ka_cum_fresh = false;
  };

  /// Cumulative bumps a single parent may cause before being treated as a
  /// cycle. A legitimate upstream reorganization causes one bump; a cycle
  /// ratchets on every circulating message, so a handful of bumps from one
  /// link is decisive. Low values heal stale-depth cycles within ~1 s at the
  /// paper's 5 msg/s rate.
  static constexpr std::uint32_t kMaxDepthBumpsPerParent = 5;

  /// Repair flavors; only failure-orphans count toward Table I.
  enum class RepairKind : std::uint8_t {
    kOrphanFailure,  ///< lost every parent to failures (§II-F)
    kOrderRebuild,   ///< upstream sent a re-activation order
    kTopUp,          ///< DAG node regaining its p-th parent; best effort
    kStarvation,     ///< live parents feeding nothing: stale structure
    kRefine,         ///< delay-aware periodic parent improvement (§II-E)
  };

  struct RepairState {
    sim::TimePoint started_at;
    bool hard = false;
    bool demoted = false;  ///< top-up already used its one self-demotion
    std::vector<net::NodeId> pending_candidates;
    net::NodeId awaiting_ack;  ///< invalid when none outstanding
    std::uint64_t timeout_token = 0;
    /// Pending ack-timeout timer; cancelled when the repair resolves first
    /// (the common case — most repair timers never fire).
    sim::EventId timeout_event;
  };

  // Engine access shims: the stream borrows its engine's identity, clock,
  // timers, and PSS. Defined out of line (BrisaEngine is incomplete here).
  [[nodiscard]] net::NodeId id() const;
  [[nodiscard]] sim::TimePoint now() const;
  [[nodiscard]] membership::PeerSamplingService& pss() const;
  [[nodiscard]] net::Network& network() const;
  sim::EventId after(sim::Duration delay, sim::Callback fn);
  sim::PeriodicId every(sim::Duration period, sim::Callback fn);
  void cancel(sim::EventId event);

  // Message handlers (invoked by the engine after stream demux).
  void handle_data(net::NodeId from, const BrisaData& msg);
  void handle_deactivate(net::NodeId from, const BrisaDeactivate& msg);
  void handle_resume(net::NodeId from, const BrisaResume& msg);
  void handle_resume_ack(net::NodeId from, const BrisaResumeAck& msg);
  void handle_reactivate_order(net::NodeId from);
  void handle_retransmit_request(net::NodeId from,
                                 const BrisaRetransmitRequest& msg);

  // Structure emergence.
  void deliver_and_relay(net::NodeId from, const BrisaData& msg);
  void arm_gap_probe();
  void prune_with(net::NodeId duplicate_sender);
  void deactivate_inbound(net::NodeId peer);
  [[nodiscard]] bool position_eligible(net::NodeId candidate,
                                       const PositionInfo& position) const;
  void adopt_position_from(net::NodeId parent, const PositionInfo& parent_pos);
  void record_position(net::NodeId peer, const PositionInfo& position);
  [[nodiscard]] PositionInfo my_position() const;
  [[nodiscard]] CandidateInfo make_candidate(net::NodeId peer,
                                             bool incumbent) const;
  void note_structure_stability();
  /// The one definition of "peer is a child we relay to": shared by
  /// children() and out_degree() so the degree a node advertises in
  /// PositionInfo can never desync from its actual relay fan-out.
  [[nodiscard]] bool is_child(net::NodeId peer, const Link& link) const;
  /// children().size() without materializing the vector: the out-degree
  /// feeds PositionInfo on every relayed message.
  [[nodiscard]] std::size_t out_degree() const;

  // Repair (§II-F).
  void start_repair(bool allow_soft);
  void start_repair_with_kind(RepairKind kind, bool allow_soft,
                              net::NodeId exclude);
  void try_next_repair_candidate();
  void escalate_to_hard_repair();
  void arm_hard_repair_retry();
  void finish_repair(net::NodeId new_parent);
  void request_missing(net::NodeId parent);
  [[nodiscard]] std::vector<net::NodeId> soft_repair_candidates() const;

  // Sending helpers.
  void send_to(net::NodeId peer, net::MessagePtr message,
               net::TrafficClass traffic_class);
  void relay(const BrisaData& msg, net::NodeId except);
  void buffer_payload(const BrisaData& msg);
  /// Appends to the retransmit buffer and trims: first the historical
  /// retransmit_buffer count cap, then any `[limits]` entry/byte bound with
  /// its eviction policy.
  void store_payload(std::uint64_t seq, std::size_t payload_bytes);
  /// A retransmit request for holes >= from_seq, carrying a Bloom digest of
  /// the seqs we already hold above from_seq when [limits] bloom_digests is
  /// on (so the parent skips them instead of resending the whole window).
  [[nodiscard]] net::MessagePtr make_retransmit_request(
      std::uint64_t from_seq);

  BrisaEngine& engine_;
  net::StreamId stream_;
  Config config_;
  sim::Rng rng_;
  DeliveryHandler delivery_handler_;

  bool is_source_ = false;
  sim::TimePoint started_at_;
  std::uint64_t next_seq_ = 0;

  /// Per-neighbor dissemination links, sorted by id (flat storage keeps the
  /// deterministic iteration order the std::map version had, minus the
  /// pointer chases on every handle_data lookup).
  util::FlatMap<net::NodeId, Link, 8> links_;
  util::FlatSet<net::NodeId, 4> parents_;

  // Position in the structure.
  std::vector<net::NodeId> path_;  ///< tree mode; includes self when known
  std::int32_t depth_ = -1;        ///< DAG mode
  std::uint64_t cum_delay_us_ = 0; ///< accumulated hop delay from the source
  bool position_known_ = false;

  // Delivery bookkeeping. The dedup set shares util's flat seq-window
  // representation with the baselines: one presence bit per sequence.
  util::SeqSet delivered_seqs_;
  std::uint64_t contiguous_upto_ = 0;  ///< all seqs < this are delivered
  std::deque<std::pair<std::uint64_t, std::size_t>> payload_buffer_;
  std::size_t payload_buffer_bytes_ = 0;
  std::uint64_t digest_rounds_ = 0;  ///< per-round Bloom salt counter

  std::optional<RepairState> repair_;
  RepairKind repair_kind_ = RepairKind::kOrphanFailure;
  bool gap_probe_armed_ = false;
  std::uint64_t watermark_heard_ = 0;
  sim::TimePoint last_delivery_at_;
  std::uint64_t repair_token_counter_ = 0;

  Stats stats_;
};

/// Single-stream deployments read naturally with the historical name.
using Brisa = BrisaStream;

/// One BRISA endpoint per node: the net::Process and PssListener that a
/// forest of BrisaStream instances shares. Streams are stored in a flat
/// vector indexed by StreamId (ids are expected to be small and dense), so
/// the per-message demux is one bounds check + one pointer load and the
/// single-stream hot path pays no multiplexing tax.
class BrisaEngine final : public net::Process, public membership::PssListener {
 public:
  BrisaEngine(net::Network& network, membership::PeerSamplingService& pss,
              net::NodeId id);

  /// Creates and owns the state machine for `stream`. Ids must be unique;
  /// keep them dense from 0 (the demux vector grows to the largest id).
  BrisaStream& add_stream(net::StreamId stream, BrisaStream::Config config);

  /// The stream's state machine; asserts it exists.
  [[nodiscard]] BrisaStream& stream(net::StreamId stream);
  [[nodiscard]] const BrisaStream& stream(net::StreamId stream) const;
  /// nullptr when `stream` is not locally active.
  [[nodiscard]] BrisaStream* find_stream(net::StreamId stream);
  [[nodiscard]] const BrisaStream* find_stream(net::StreamId stream) const;

  [[nodiscard]] std::size_t stream_count() const { return stream_count_; }
  /// Ids of the locally active streams, ascending.
  [[nodiscard]] std::vector<net::StreamId> stream_ids() const;

  [[nodiscard]] membership::PeerSamplingService& pss() { return pss_; }

  // --- PssListener ------------------------------------------------------------

  void on_neighbor_up(net::NodeId peer) override;
  void on_neighbor_down(net::NodeId peer,
                        membership::NeighborLossReason reason) override;
  void on_app_message(net::NodeId from, net::MessagePtr message) override;
  void on_neighbor_watermark(net::NodeId peer, net::StreamId stream,
                             std::uint64_t watermark,
                             std::uint64_t aux) override;

 private:
  membership::PeerSamplingService& pss_;
  /// Index = StreamId; nullptr for ids never added (sparse use).
  std::vector<std::unique_ptr<BrisaStream>> streams_;
  std::size_t stream_count_ = 0;
};

}  // namespace brisa::core
