// BRISA wire messages (§II-C through §II-G).
//
// Tree mode embeds the full dissemination path in every data message
// (exact cycle prevention, §II-D); DAG mode embeds only the sender's depth
// (approximate but constant-size, §II-G). wire_size() charges exactly what
// each variant would carry, so the metadata-cost comparison of §II-D is
// measurable.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/message.h"
#include "net/node_id.h"
#include "util/bloom.h"

namespace brisa::core {

/// Structure being emerged on top of the PSS overlay.
enum class StructureMode : std::uint8_t {
  kTree,  ///< one parent; path-embedding cycle prevention
  kDag,   ///< p parents; depth-tag cycle prevention
};

/// A node's claim about its position in the dissemination structure, plus
/// the attributes consumed by the parent-selection strategies (§II-E, §IV).
struct PositionInfo {
  bool known = false;
  /// Tree mode: identifiers from the stream source up to and including the
  /// claiming node.
  std::vector<net::NodeId> path;
  /// DAG mode: the claiming node's depth (source = 0); -1 when unknown.
  std::int32_t depth = -1;
  /// Uptime in seconds (gerontocratic strategy).
  std::uint32_t uptime_s = 0;
  /// Current out-degree (load-balancing strategy).
  std::uint16_t degree = 0;
  /// Estimated cumulative delay from the stream source in microseconds —
  /// the "cumulative round trip times, taken at each hop" of §III-B, carried
  /// so the delay-aware strategy can minimize end-to-end delay rather than
  /// the last hop only.
  std::uint32_t cum_delay_us = 0;

  /// Bytes this metadata occupies inside a message.
  [[nodiscard]] std::size_t wire_bytes(StructureMode mode) const {
    const std::size_t attrs = 4 + 2 + 4;  // uptime + degree + cum delay
    if (mode == StructureMode::kTree) {
      return attrs + 1 + path.size() * net::kWireIdBytes;
    }
    return attrs + 4;  // depth integer
  }
};

/// A stream payload message. Payload bytes are opaque (only the size is
/// simulated); `path`/`depth` carry the cycle-prevention metadata of the
/// *sender*.
class BrisaData final : public net::Message {
 public:
  BrisaData(std::uint32_t stream, std::uint64_t seq,
            std::size_t payload_bytes, StructureMode mode,
            PositionInfo sender_position, bool retransmission)
      : stream_(stream),
        seq_(seq),
        payload_bytes_(payload_bytes),
        mode_(mode),
        sender_position_(std::move(sender_position)),
        retransmission_(retransmission) {}

  [[nodiscard]] net::MessageKind kind() const override {
    return net::MessageKind::kBrisaData;
  }
  [[nodiscard]] std::size_t wire_size() const override {
    // stream + seq + flags header, then metadata, then payload.
    return 16 + sender_position_.wire_bytes(mode_) + payload_bytes_;
  }
  [[nodiscard]] const char* name() const override { return "brisa-data"; }

  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  [[nodiscard]] std::uint64_t seq() const { return seq_; }
  [[nodiscard]] std::size_t payload_bytes() const { return payload_bytes_; }
  [[nodiscard]] StructureMode mode() const { return mode_; }
  [[nodiscard]] const PositionInfo& sender_position() const {
    return sender_position_;
  }
  [[nodiscard]] bool retransmission() const { return retransmission_; }

 private:
  std::uint32_t stream_;
  std::uint64_t seq_;
  std::size_t payload_bytes_;
  StructureMode mode_;
  PositionInfo sender_position_;
  bool retransmission_;
};

/// "Stop relaying the stream to me" (§II-C). Carries the sender's position
/// so the receiving node refreshes its metadata cache — the information
/// later consulted by soft repair (§II-F).
class BrisaDeactivate final : public net::Message {
 public:
  BrisaDeactivate(std::uint32_t stream, StructureMode mode,
                  PositionInfo sender_position)
      : stream_(stream),
        mode_(mode),
        sender_position_(std::move(sender_position)) {}

  [[nodiscard]] net::MessageKind kind() const override {
    return net::MessageKind::kBrisaDeactivate;
  }
  [[nodiscard]] std::size_t wire_size() const override {
    return 8 + sender_position_.wire_bytes(mode_);
  }
  [[nodiscard]] const char* name() const override { return "brisa-deactivate"; }

  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  [[nodiscard]] const PositionInfo& sender_position() const {
    return sender_position_;
  }

 private:
  std::uint32_t stream_;
  StructureMode mode_;
  PositionInfo sender_position_;
};

/// "(Re-)activate your outbound link to me" — sent by soft repair to the
/// chosen replacement parent, and by hard repair to every neighbor.
class BrisaResume final : public net::Message {
 public:
  BrisaResume(std::uint32_t stream, bool want_ack)
      : stream_(stream), want_ack_(want_ack) {}

  [[nodiscard]] net::MessageKind kind() const override {
    return net::MessageKind::kBrisaResume;
  }
  [[nodiscard]] std::size_t wire_size() const override { return 9; }
  [[nodiscard]] const char* name() const override { return "brisa-resume"; }

  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  [[nodiscard]] bool want_ack() const { return want_ack_; }

 private:
  std::uint32_t stream_;
  bool want_ack_;
};

/// Reply to BrisaResume: the responder's current position, letting the
/// repairing node confirm eligibility (cycle safety) before adopting it.
class BrisaResumeAck final : public net::Message {
 public:
  BrisaResumeAck(std::uint32_t stream, StructureMode mode,
                 PositionInfo responder_position)
      : stream_(stream),
        mode_(mode),
        responder_position_(std::move(responder_position)) {}

  [[nodiscard]] net::MessageKind kind() const override {
    return net::MessageKind::kBrisaResumeAck;
  }
  [[nodiscard]] std::size_t wire_size() const override {
    return 8 + responder_position_.wire_bytes(mode_);
  }
  [[nodiscard]] const char* name() const override { return "brisa-resume-ack"; }

  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  [[nodiscard]] const PositionInfo& responder_position() const {
    return responder_position_;
  }

 private:
  std::uint32_t stream_;
  StructureMode mode_;
  PositionInfo responder_position_;
};

/// Hard-repair re-activation order, propagated from an orphan down its
/// subtree (§II-F). Children that find a replacement parent stop the
/// propagation.
class BrisaReactivateOrder final : public net::Message {
 public:
  explicit BrisaReactivateOrder(std::uint32_t stream) : stream_(stream) {}

  [[nodiscard]] net::MessageKind kind() const override {
    return net::MessageKind::kBrisaReactivateOrder;
  }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
  [[nodiscard]] const char* name() const override {
    return "brisa-reactivate-order";
  }

  [[nodiscard]] std::uint32_t stream() const { return stream_; }

 private:
  std::uint32_t stream_;
};

/// "Send me everything from `from_seq` on that you still buffer" — issued to
/// a freshly acquired parent to recover messages lost during repair (§II-F).
/// Under `[limits]` bloom_digests the request also carries a Bloom filter of
/// the seqs >= from_seq the requester already holds out of order, so the
/// parent skips those instead of resending its whole buffered window; a
/// false positive wrongly skips one seq, which the re-armed gap probe
/// recovers with a differently-salted filter.
class BrisaRetransmitRequest final : public net::Message {
 public:
  BrisaRetransmitRequest(std::uint32_t stream, std::uint64_t from_seq)
      : stream_(stream), from_seq_(from_seq) {}
  BrisaRetransmitRequest(std::uint32_t stream, std::uint64_t from_seq,
                         util::BloomFilter held_digest)
      : stream_(stream),
        from_seq_(from_seq),
        held_digest_(std::move(held_digest)) {}

  [[nodiscard]] net::MessageKind kind() const override {
    return net::MessageKind::kBrisaRetransmitRequest;
  }
  [[nodiscard]] std::size_t wire_size() const override {
    return 16 + (held_digest_ ? held_digest_->byte_size() : 0);
  }
  [[nodiscard]] const char* name() const override {
    return "brisa-retransmit-request";
  }

  [[nodiscard]] std::uint32_t stream() const { return stream_; }
  [[nodiscard]] std::uint64_t from_seq() const { return from_seq_; }
  /// Does the requester (claim to) already hold `seq`? Always false in the
  /// exact form — historically the parent resent its whole window.
  [[nodiscard]] bool known(std::uint64_t seq) const {
    return held_digest_ && held_digest_->may_contain(seq);
  }

 private:
  std::uint32_t stream_;
  std::uint64_t from_seq_;
  std::optional<util::BloomFilter> held_digest_;
};

}  // namespace brisa::core
