#include "core/brisa.h"

#include "util/assert.h"

namespace brisa::core {

BrisaEngine::BrisaEngine(net::Network& network,
                         membership::PeerSamplingService& pss, net::NodeId id)
    : net::Process(network, id), pss_(pss) {
  pss_.set_listener(this);
  pss_.set_watermark_provider([this]() {
    std::vector<membership::AppWatermark> entries;
    entries.reserve(stream_count_);
    for (const auto& stream : streams_) {
      if (stream != nullptr) entries.push_back(stream->watermark_entry());
    }
    return entries;
  });
}

BrisaStream& BrisaEngine::add_stream(net::StreamId stream,
                                     BrisaStream::Config config) {
  if (streams_.size() <= stream) streams_.resize(stream + 1);
  BRISA_ASSERT_MSG(streams_[stream] == nullptr, "stream id already active");
  streams_[stream] = std::make_unique<BrisaStream>(*this, stream, config);
  ++stream_count_;
  return *streams_[stream];
}

BrisaStream& BrisaEngine::stream(net::StreamId stream) {
  BrisaStream* found = find_stream(stream);
  BRISA_ASSERT_MSG(found != nullptr, "stream not active on this node");
  return *found;
}

const BrisaStream& BrisaEngine::stream(net::StreamId stream) const {
  const BrisaStream* found = find_stream(stream);
  BRISA_ASSERT_MSG(found != nullptr, "stream not active on this node");
  return *found;
}

BrisaStream* BrisaEngine::find_stream(net::StreamId stream) {
  return stream < streams_.size() ? streams_[stream].get() : nullptr;
}

const BrisaStream* BrisaEngine::find_stream(net::StreamId stream) const {
  return stream < streams_.size() ? streams_[stream].get() : nullptr;
}

std::vector<net::StreamId> BrisaEngine::stream_ids() const {
  std::vector<net::StreamId> ids;
  ids.reserve(stream_count_);
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i] != nullptr) {
      ids.push_back(static_cast<net::StreamId>(i));
    }
  }
  return ids;
}

void BrisaEngine::on_neighbor_up(net::NodeId peer) {
  for (const auto& stream : streams_) {
    if (stream != nullptr) stream->on_neighbor_up(peer);
  }
}

void BrisaEngine::on_neighbor_down(net::NodeId peer,
                                   membership::NeighborLossReason reason) {
  for (const auto& stream : streams_) {
    if (stream != nullptr) stream->on_neighbor_down(peer, reason);
  }
}

void BrisaEngine::on_neighbor_watermark(net::NodeId peer, net::StreamId stream,
                                        std::uint64_t watermark,
                                        std::uint64_t aux) {
  if (BrisaStream* s = find_stream(stream)) {
    s->on_neighbor_watermark(peer, watermark, aux);
  }
}

void BrisaEngine::on_app_message(net::NodeId from, net::MessagePtr message) {
  // Demux: kind first, then the stream id every BRISA message carries.
  // Messages for streams this node does not run are dropped (a peer may
  // legitimately run a superset of our streams).
  switch (message->kind()) {
    case net::MessageKind::kBrisaData: {
      const auto& msg = static_cast<const BrisaData&>(*message);
      if (BrisaStream* s = find_stream(msg.stream())) s->handle_data(from, msg);
      return;
    }
    case net::MessageKind::kBrisaDeactivate: {
      const auto& msg = static_cast<const BrisaDeactivate&>(*message);
      if (BrisaStream* s = find_stream(msg.stream())) {
        s->handle_deactivate(from, msg);
      }
      return;
    }
    case net::MessageKind::kBrisaResume: {
      const auto& msg = static_cast<const BrisaResume&>(*message);
      if (BrisaStream* s = find_stream(msg.stream())) {
        s->handle_resume(from, msg);
      }
      return;
    }
    case net::MessageKind::kBrisaResumeAck: {
      const auto& msg = static_cast<const BrisaResumeAck&>(*message);
      if (BrisaStream* s = find_stream(msg.stream())) {
        s->handle_resume_ack(from, msg);
      }
      return;
    }
    case net::MessageKind::kBrisaReactivateOrder: {
      const auto& msg = static_cast<const BrisaReactivateOrder&>(*message);
      if (BrisaStream* s = find_stream(msg.stream())) {
        s->handle_reactivate_order(from);
      }
      return;
    }
    case net::MessageKind::kBrisaRetransmitRequest: {
      const auto& msg = static_cast<const BrisaRetransmitRequest&>(*message);
      if (BrisaStream* s = find_stream(msg.stream())) {
        s->handle_retransmit_request(from, msg);
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace brisa::core
