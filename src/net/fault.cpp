#include "net/fault.h"

#include "util/assert.h"

namespace brisa::net {

void FaultPlan::add_loss(LossRule rule) {
  BRISA_ASSERT(rule.probability >= 0.0 && rule.probability <= 1.0);
  BRISA_ASSERT(rule.from <= rule.to);
  losses_.push_back(rule);
}

void FaultPlan::add_partition(PartitionRule rule) {
  BRISA_ASSERT(rule.from <= rule.to);
  partitions_.push_back(rule);
}

void FaultPlan::add_slow(SlowRule rule) {
  BRISA_ASSERT(rule.factor >= 1.0);
  BRISA_ASSERT(rule.from <= rule.to);
  slows_.push_back(rule);
}

void FaultPlan::add_crash(CrashRule rule) {
  BRISA_ASSERT(rule.count > 0);
  BRISA_ASSERT(rule.duration > sim::Duration::zero());
  crashes_.push_back(rule);
}

void FaultPlan::add_duty(DutyRule rule) {
  BRISA_ASSERT(rule.from <= rule.to);
  BRISA_ASSERT(rule.up > sim::Duration::zero());
  BRISA_ASSERT(rule.down > sim::Duration::zero());
  duties_.push_back(rule);
}

bool FaultPlan::matches(const NodeGroup& a, const NodeGroup& b, NodeId from,
                        NodeId to) {
  return (a.contains(from) && b.contains(to)) ||
         (a.contains(to) && b.contains(from));
}

bool FaultPlan::active(sim::TimePoint from, sim::TimePoint to,
                       sim::TimePoint now) {
  return from <= now && now < to;
}

bool FaultPlan::partitioned(sim::TimePoint now, NodeId from, NodeId to) const {
  for (const PartitionRule& rule : partitions_) {
    if (active(rule.from, rule.to, now) && matches(rule.a, rule.b, from, to)) {
      return true;
    }
  }
  return false;
}

LinkVerdict FaultPlan::link_verdict(sim::TimePoint now, NodeId from, NodeId to,
                                    sim::CounterRng& rng) const {
  if (partitioned(now, from, to)) return LinkVerdict::kBlackhole;
  for (const LossRule& rule : losses_) {
    if (!active(rule.from, rule.to, now)) continue;
    if (!matches(rule.a, rule.b, from, to)) continue;
    if (rng.bernoulli(rule.probability)) return LinkVerdict::kDrop;
  }
  return LinkVerdict::kDeliver;
}

double FaultPlan::latency_factor(sim::TimePoint now, NodeId from,
                                 NodeId to) const {
  double factor = 1.0;
  for (const SlowRule& rule : slows_) {
    if (active(rule.from, rule.to, now) && matches(rule.a, rule.b, from, to)) {
      factor *= rule.factor;
    }
  }
  return factor;
}

FaultPlan FaultPlan::shifted(sim::Duration offset) const {
  FaultPlan out = *this;
  for (LossRule& rule : out.losses_) {
    rule.from = rule.from + offset;
    rule.to = rule.to + offset;
  }
  for (PartitionRule& rule : out.partitions_) {
    rule.from = rule.from + offset;
    rule.to = rule.to + offset;
  }
  for (SlowRule& rule : out.slows_) {
    rule.from = rule.from + offset;
    rule.to = rule.to + offset;
  }
  for (CrashRule& rule : out.crashes_) {
    rule.at = rule.at + offset;
  }
  for (DutyRule& rule : out.duties_) {
    rule.from = rule.from + offset;
    rule.to = rule.to + offset;
  }
  return out;
}

}  // namespace brisa::net
