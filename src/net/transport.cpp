#include "net/transport.h"

#include "util/assert.h"
#include "util/logging.h"

namespace brisa::net {

const char* to_string(CloseReason reason) {
  switch (reason) {
    case CloseReason::kLocalClose:
      return "local-close";
    case CloseReason::kRemoteClose:
      return "remote-close";
    case CloseReason::kPeerFailure:
      return "peer-failure";
    case CloseReason::kRefused:
      return "refused";
  }
  return "?";
}

Transport::Transport(Network& network) : network_(network) {
  network_.add_death_listener(this);
}

void Transport::bind(NodeId node, TransportHandler* handler) {
  handlers_[node.index()] = handler;
}

TransportHandler* Transport::handler_of(NodeId node) {
  const auto it = handlers_.find(node.index());
  return it == handlers_.end() ? nullptr : it->second;
}

ConnectionId Transport::connect(NodeId from, NodeId to) {
  BRISA_ASSERT_MSG(from != to, "self-connection");
  BRISA_ASSERT_MSG(network_.alive(from), "dead host calling connect");
  const ConnectionId conn = next_id_++;
  connections_.emplace(conn, Connection{from, to, State::kConnecting,
                                        sim::TimePoint::origin(),
                                        sim::TimePoint::origin()});
  by_host_[from.index()].insert(conn);
  by_host_[to.index()].insert(conn);

  sim::Simulator& simulator = network_.simulator();
  // SYN: from -> to.
  const sim::TimePoint syn_done =
      network_.nic_send(from, kControlSegmentBytes, TrafficClass::kMembership);
  const sim::TimePoint syn_arrival =
      syn_done + network_.latency().sample(from, to, simulator.rng());
  simulator.at(syn_arrival, [this, conn, from, to]() {
    Connection* c = find(conn);
    if (c == nullptr || c->state == State::kClosed) return;
    sim::Simulator& sim2 = network_.simulator();
    if (!network_.alive(to)) {
      // Dead acceptor: initiator sees a refusal after its detection delay.
      const sim::Duration detect = network_.sample_failure_detect_delay();
      sim2.after(detect, [this, conn, from]() {
        Connection* c2 = find(conn);
        if (c2 == nullptr || c2->state == State::kClosed) return;
        const NodeId acceptor = c2->acceptor;
        mark_closed(conn);
        if (network_.alive(from)) {
          if (TransportHandler* h = handler_of(from)) {
            h->on_connection_down(conn, acceptor, CloseReason::kRefused);
          }
        }
        connections_.erase(conn);
      });
      return;
    }
    network_.charge_receive(to, kControlSegmentBytes,
                            TrafficClass::kMembership);
    // Acceptor considers the connection up as soon as it replies SYN-ACK.
    c->state = State::kEstablished;
    if (TransportHandler* h = handler_of(to)) {
      h->on_connection_up(conn, from, /*initiated=*/false);
    }
    // SYN-ACK: to -> from.
    Connection* c_after = find(conn);
    if (c_after == nullptr || c_after->state == State::kClosed) return;
    if (!network_.alive(to)) return;  // acceptor died inside the callback
    const sim::TimePoint ack_done = network_.nic_send(
        to, kControlSegmentBytes, TrafficClass::kMembership);
    const sim::TimePoint ack_arrival =
        ack_done + network_.latency().sample(to, from, sim2.rng());
    sim2.at(ack_arrival, [this, conn, from, to]() {
      Connection* c2 = find(conn);
      if (c2 == nullptr || c2->state != State::kEstablished) return;
      if (!network_.alive(from)) return;  // initiator died meanwhile
      network_.charge_receive(from, kControlSegmentBytes,
                              TrafficClass::kMembership);
      if (TransportHandler* h = handler_of(from)) {
        h->on_connection_up(conn, to, /*initiated=*/true);
      }
    });
  });
  return conn;
}

void Transport::close(ConnectionId conn, NodeId closer) {
  Connection* c = find(conn);
  if (c == nullptr || c->state == State::kClosed) return;
  const NodeId peer = peer_of(conn, closer);
  // FIN: closer -> peer. Must not overtake data already in flight on this
  // direction, so it shares the per-direction FIFO clamp with send().
  if (!network_.alive(closer)) {
    mark_closed(conn);
    return;
  }
  const sim::TimePoint fin_done =
      network_.nic_send(closer, kControlSegmentBytes,
                        TrafficClass::kMembership);
  sim::TimePoint fin_arrival =
      fin_done +
      network_.latency().sample(closer, peer, network_.simulator().rng());
  sim::TimePoint& last = (peer == c->initiator)
                             ? c->last_delivery_to_initiator
                             : c->last_delivery_to_acceptor;
  if (fin_arrival <= last) fin_arrival = last + sim::Duration::microseconds(1);
  last = fin_arrival;
  mark_closed(conn);
  network_.simulator().at(fin_arrival, [this, conn, peer]() {
    if (!network_.alive(peer)) return;
    network_.charge_receive(peer, kControlSegmentBytes,
                            TrafficClass::kMembership);
    Connection* c2 = find(conn);
    // mark_closed already ran; notify the peer exactly once via the map of
    // closed-but-not-yet-notified connections: the entry is erased after
    // notification.
    if (c2 == nullptr) return;
    if (TransportHandler* h = handler_of(peer)) {
      const NodeId other = peer_of(conn, peer);
      h->on_connection_down(conn, other, CloseReason::kRemoteClose);
    }
    connections_.erase(conn);
  });
}

bool Transport::send(ConnectionId conn, NodeId sender, MessagePtr message,
                     TrafficClass traffic_class) {
  BRISA_ASSERT(message != nullptr);
  Connection* c = find(conn);
  if (c == nullptr || c->state != State::kEstablished) return false;
  if (sender != c->initiator && sender != c->acceptor) return false;
  if (!network_.alive(sender)) return false;
  const NodeId receiver = peer_of(conn, sender);

  const std::size_t wire_bytes = message->wire_size();
  const sim::TimePoint serialized =
      network_.nic_send(sender, wire_bytes, traffic_class);
  sim::Simulator& simulator = network_.simulator();
  sim::TimePoint arrival =
      serialized + network_.latency().sample(sender, receiver,
                                             simulator.rng());
  // FIFO per direction: a message may not overtake its predecessors.
  sim::TimePoint& last = (receiver == c->initiator)
                             ? c->last_delivery_to_initiator
                             : c->last_delivery_to_acceptor;
  if (arrival <= last) arrival = last + sim::Duration::microseconds(1);
  last = arrival;

  // In-flight data outlives a graceful close (TCP delivers bytes already on
  // the wire), so delivery only checks that the connection record still
  // exists and the receiver is alive — not that the state is established.
  sim::DeliverEvent event;
  event.sink = this;
  event.token = const_cast<void*>(static_cast<const void*>(message.detach()));
  event.drop_token = &release_message_token;
  event.id = conn;
  event.from = sender.index();
  event.to = receiver.index();
  event.bytes = static_cast<std::uint32_t>(wire_bytes);
  event.tag = kSegmentArrival;
  event.tclass = static_cast<std::uint16_t>(traffic_class);
  simulator.at_deliver(arrival, event);
  return true;
}

void Transport::on_deliver(const sim::DeliverEvent& event) {
  MessagePtr message =
      MessageRef::attach(static_cast<const Message*>(event.token));
  const ConnectionId conn = event.id;
  const NodeId sender(event.from);
  const NodeId receiver(event.to);
  if (find(conn) == nullptr) return;
  if (!network_.alive(receiver)) return;
  if (event.tag == kSegmentArrival) {
    network_.charge_receive(receiver, event.bytes,
                            static_cast<TrafficClass>(event.tclass));
    const sim::TimePoint ready = network_.cpu_deliver(
        receiver, network_.simulator().now(), event.bytes);
    if (ready != network_.simulator().now()) {
      sim::DeliverEvent next = event;
      next.tag = kSegmentCpuReady;
      next.token = const_cast<void*>(
          static_cast<const void*>(message.detach()));
      network_.simulator().at_deliver(ready, next);
      return;
    }
  }
  if (TransportHandler* h = handler_of(receiver)) {
    h->on_message(conn, sender, std::move(message));
  }
}


bool Transport::established(ConnectionId conn) const {
  const Connection* c = find(conn);
  return c != nullptr && c->state == State::kEstablished;
}

NodeId Transport::peer_of(ConnectionId conn, NodeId self) const {
  const Connection* c = find(conn);
  BRISA_ASSERT_MSG(c != nullptr, "peer_of on unknown connection");
  BRISA_ASSERT_MSG(self == c->initiator || self == c->acceptor,
                   "peer_of: not an endpoint");
  return self == c->initiator ? c->acceptor : c->initiator;
}

std::size_t Transport::open_connections() const {
  std::size_t open = 0;
  for (const auto& [id, c] : connections_) {
    if (c.state != State::kClosed) ++open;
  }
  return open;
}

void Transport::on_host_killed(NodeId node) {
  const auto it = by_host_.find(node.index());
  if (it == by_host_.end()) return;
  // Copy: callbacks may mutate the set.
  const std::vector<ConnectionId> conns(it->second.begin(), it->second.end());
  for (const ConnectionId conn : conns) {
    Connection* c = find(conn);
    if (c == nullptr || c->state == State::kClosed) continue;
    const NodeId peer = peer_of(conn, node);
    mark_closed(conn);
    if (!network_.alive(peer)) continue;
    const sim::Duration detect = network_.sample_failure_detect_delay();
    network_.simulator().after(detect, [this, conn, peer]() {
      if (!network_.alive(peer)) return;
      Connection* c2 = find(conn);
      if (c2 == nullptr) return;
      if (TransportHandler* h = handler_of(peer)) {
        const NodeId other = peer_of(conn, peer);
        h->on_connection_down(conn, other, CloseReason::kPeerFailure);
      }
      connections_.erase(conn);
    });
  }
}

void Transport::mark_closed(ConnectionId conn) {
  Connection* c = find(conn);
  if (c == nullptr) return;
  c->state = State::kClosed;
  by_host_[c->initiator.index()].erase(conn);
  by_host_[c->acceptor.index()].erase(conn);
}

Transport::Connection* Transport::find(ConnectionId conn) {
  const auto it = connections_.find(conn);
  return it == connections_.end() ? nullptr : &it->second;
}

const Transport::Connection* Transport::find(ConnectionId conn) const {
  const auto it = connections_.find(conn);
  return it == connections_.end() ? nullptr : &it->second;
}

}  // namespace brisa::net
