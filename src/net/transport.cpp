#include "net/transport.h"

#include <algorithm>

#include "util/assert.h"
#include "util/logging.h"

namespace brisa::net {

const char* to_string(CloseReason reason) {
  switch (reason) {
    case CloseReason::kLocalClose:
      return "local-close";
    case CloseReason::kRemoteClose:
      return "remote-close";
    case CloseReason::kPeerFailure:
      return "peer-failure";
    case CloseReason::kRefused:
      return "refused";
  }
  return "?";
}

Transport::Transport(Network& network) : network_(network) {
  network_.add_death_listener(this);
}

void Transport::bind(NodeId node, TransportHandler* handler) {
  if (node.index() >= handlers_.size()) {
    handlers_.resize(node.index() + 1, nullptr);
  }
  handlers_[node.index()] = handler;
}

TransportHandler* Transport::handler_of(NodeId node) {
  return node.index() < handlers_.size() ? handlers_[node.index()] : nullptr;
}

// --- Connection slab ---------------------------------------------------------

ConnectionId Transport::allocate_connection() {
  std::uint32_t slot;
  if (free_head_ != 0xffffffff) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  ConnSlot& s = slots_[slot];
  s.conn = Connection{};
  s.open = true;
  s.next_free = 0xffffffff;
  return (static_cast<ConnectionId>(s.gen) << 32) |
         static_cast<ConnectionId>(slot + 1);
}

void Transport::erase_connection(ConnectionId conn) {
  const std::uint32_t slot = slot_of(conn);
  if (slot >= slots_.size()) return;
  ConnSlot& s = slots_[slot];
  if (!s.open || s.gen != gen_of(conn)) return;  // already erased
  s.open = false;
  // Bumping the generation invalidates every outstanding handle; 0 would
  // collide with kInvalidConnectionId's encoding, so skip it on wraparound.
  s.gen = s.gen + 1 == 0 ? 1 : s.gen + 1;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Transport::track(NodeId node, ConnectionId conn) {
  if (node.index() >= by_host_.size()) by_host_.resize(node.index() + 1);
  by_host_[node.index()].push_back(conn);
}

void Transport::untrack(NodeId node, ConnectionId conn) {
  if (node.index() >= by_host_.size()) return;
  auto& conns = by_host_[node.index()];
  for (auto it = conns.begin(); it != conns.end(); ++it) {
    if (*it == conn) {
      conns.erase(it);
      return;
    }
  }
}

ConnectionId Transport::connect(NodeId from, NodeId to) {
  BRISA_ASSERT_MSG(from != to, "self-connection");
  BRISA_ASSERT_MSG(network_.alive(from), "dead host calling connect");
  if (network_.suspended(from)) {
    // Frozen initiator: the SYN never leaves; resolve as a refusal once the
    // host wakes. No connection record is needed — the id is allocated and
    // immediately retired, so it is unique but never live.
    const ConnectionId conn = allocate_connection();
    erase_connection(conn);
    network_.note_fault(from, TrafficClass::kMembership,
                        LinkVerdict::kBlackhole, /*datagram=*/false);
    notify_endpoint_failure(conn, from, to, CloseReason::kRefused);
    return conn;
  }
  const ConnectionId conn = allocate_connection();

  // SYN: from -> to, subject to the fault layer.
  const std::optional<sim::TimePoint> syn_arrival = transmit_segment(
      from, to, kControlSegmentBytes, TrafficClass::kMembership);
  if (!syn_arrival) {
    // Partitioned link: SYN vanishes, initiator times out.
    erase_connection(conn);
    notify_endpoint_failure(conn, from, to, CloseReason::kRefused);
    return conn;
  }

  slots_[slot_of(conn)].conn =
      Connection{from, to, State::kConnecting, sim::TimePoint::origin(),
                 sim::TimePoint::origin()};
  track(from, conn);
  track(to, conn);

  sim::Simulator& simulator = network_.simulator();
  simulator.at(*syn_arrival, [this, conn, from, to]() {
    Connection* c = find(conn);
    if (c == nullptr || c->state == State::kClosed) return;
    sim::Simulator& sim2 = network_.simulator();
    if (!network_.responsive(to)) {
      // Dead or frozen acceptor: initiator sees a refusal after its
      // detection delay.
      mark_closed(conn);
      erase_connection(conn);
      notify_endpoint_failure(conn, from, to, CloseReason::kRefused);
      return;
    }
    network_.charge_receive(to, kControlSegmentBytes,
                            TrafficClass::kMembership);
    // Acceptor considers the connection up as soon as it replies SYN-ACK.
    c->state = State::kEstablished;
    if (TransportHandler* h = handler_of(to)) {
      h->on_connection_up(conn, from, /*initiated=*/false);
    }
    // SYN-ACK: to -> from.
    Connection* c_after = find(conn);
    if (c_after == nullptr || c_after->state == State::kClosed) return;
    if (!network_.responsive(to)) return;  // acceptor died inside the callback
    const std::optional<sim::TimePoint> ack_arrival = transmit_segment(
        to, from, kControlSegmentBytes, TrafficClass::kMembership);
    if (!ack_arrival) {
      // SYN-ACK lost to a partition: the half-open connection breaks — the
      // acceptor (already up) sees a failure, the initiator a failed dial.
      break_connection(conn);
      return;
    }
    sim2.at(*ack_arrival, [this, conn, from, to]() {
      Connection* c2 = find(conn);
      if (c2 == nullptr || c2->state != State::kEstablished) return;
      if (!network_.responsive(from)) return;  // initiator died meanwhile
      network_.charge_receive(from, kControlSegmentBytes,
                              TrafficClass::kMembership);
      if (TransportHandler* h = handler_of(from)) {
        h->on_connection_up(conn, to, /*initiated=*/true);
      }
    });
  });
  return conn;
}

void Transport::close(ConnectionId conn, NodeId closer) {
  Connection* c = find(conn);
  if (c == nullptr || c->state == State::kClosed) return;
  const NodeId peer = peer_of(conn, closer);
  // FIN: closer -> peer. Must not overtake data already in flight on this
  // direction, so it shares the per-direction FIFO clamp with send().
  if (!network_.responsive(closer)) {
    mark_closed(conn);
    return;
  }
  const std::optional<sim::TimePoint> fin_sent = transmit_segment(
      closer, peer, kControlSegmentBytes, TrafficClass::kMembership);
  if (!fin_sent) {
    // FIN vanished into the partition: the peer sees a failure after its
    // detection delay (RST-on-timeout) instead of a graceful close; the
    // closer needs no callback (it already knows).
    sever(conn, /*notify_initiator=*/peer == c->initiator,
          /*notify_acceptor=*/peer == c->acceptor);
    return;
  }
  sim::TimePoint fin_arrival = *fin_sent;
  sim::TimePoint& last = (peer == c->initiator)
                             ? c->last_delivery_to_initiator
                             : c->last_delivery_to_acceptor;
  if (fin_arrival <= last) fin_arrival = last + sim::Duration::microseconds(1);
  last = fin_arrival;
  mark_closed(conn);
  network_.simulator().at(fin_arrival, [this, conn, peer, closer]() {
    if (!network_.alive(peer)) return;
    if (network_.suspended(peer)) {
      // Frozen receiver: the FIN is lost, but the close still happened —
      // queue the notice so the peer learns at resume, and release the
      // record now.
      network_.note_rx_suppressed();
      queue_resume_notice(peer, {conn, closer, CloseReason::kRemoteClose});
      erase_connection(conn);
      return;
    }
    network_.charge_receive(peer, kControlSegmentBytes,
                            TrafficClass::kMembership);
    Connection* c2 = find(conn);
    // mark_closed already ran; notify the peer exactly once via the map of
    // closed-but-not-yet-notified connections: the entry is erased after
    // notification.
    if (c2 == nullptr) return;
    if (TransportHandler* h = handler_of(peer)) {
      const NodeId other = peer_of(conn, peer);
      h->on_connection_down(conn, other, CloseReason::kRemoteClose);
    }
    erase_connection(conn);
  });
}

bool Transport::send(ConnectionId conn, NodeId sender, MessagePtr message,
                     TrafficClass traffic_class) {
  BRISA_ASSERT(message != nullptr);
  Connection* c = find(conn);
  if (c == nullptr || c->state != State::kEstablished) return false;
  if (sender != c->initiator && sender != c->acceptor) return false;
  // No suspension check needed: suspending a host break_connection-closes
  // every one of its connections, so the established check above already
  // rejects sends involving frozen endpoints.
  if (!network_.alive(sender)) return false;
  const NodeId receiver = peer_of(conn, sender);

  const std::size_t wire_bytes = message->wire_size();
  const std::optional<sim::TimePoint> sent =
      transmit_segment(sender, receiver, wire_bytes, traffic_class);
  if (!sent) {
    // The segment was transmitted into a partition: TCP gives up and the
    // connection breaks, both ends learning after their detection delays.
    // The send itself was accepted — failure is async, exactly like a real
    // socket write.
    break_connection(conn);
    return true;
  }
  sim::Simulator& simulator = network_.simulator();
  sim::TimePoint arrival = *sent;
  // FIFO per direction: a message may not overtake its predecessors.
  sim::TimePoint& last = (receiver == c->initiator)
                             ? c->last_delivery_to_initiator
                             : c->last_delivery_to_acceptor;
  if (arrival <= last) arrival = last + sim::Duration::microseconds(1);
  last = arrival;

  // In-flight data outlives a graceful close (TCP delivers bytes already on
  // the wire), so delivery only checks that the connection record still
  // exists and the receiver is alive — not that the state is established.
  sim::DeliverEvent event;
  event.sink = this;
  event.token = const_cast<void*>(static_cast<const void*>(message.detach()));
  event.drop_token = &release_message_token;
  event.id = conn;
  event.from = sender.index();
  event.to = receiver.index();
  event.bytes = static_cast<std::uint32_t>(wire_bytes);
  event.tag = kSegmentArrival;
  event.tclass = static_cast<std::uint16_t>(traffic_class);
  simulator.at_deliver(arrival, event);
  return true;
}

void Transport::on_deliver(const sim::DeliverEvent& event) {
  MessagePtr message =
      MessageRef::attach(static_cast<const Message*>(event.token));
  const ConnectionId conn = event.id;
  const NodeId sender(event.from);
  const NodeId receiver(event.to);
  if (!network_.alive(receiver)) return;
  if (network_.suspended(receiver)) {
    network_.note_rx_suppressed();
    return;
  }
  if (event.tag == kSegmentArrival) {
    // The record gates only the wire stage: once the bytes have arrived
    // (receive charged below), a subsequent record erase must not eat the
    // message while it sits in the CPU queue.
    if (find(conn) == nullptr) return;
    network_.charge_receive(receiver, event.bytes,
                            static_cast<TrafficClass>(event.tclass));
    const sim::TimePoint ready = network_.cpu_deliver(
        receiver, network_.simulator().now(), event.bytes);
    if (ready != network_.simulator().now()) {
      sim::DeliverEvent next = event;
      next.tag = kSegmentCpuReady;
      next.token = const_cast<void*>(
          static_cast<const void*>(message.detach()));
      network_.simulator().at_deliver(ready, next);
      return;
    }
  }
  if (TransportHandler* h = handler_of(receiver)) {
    h->on_message(conn, sender, std::move(message));
  }
}


bool Transport::established(ConnectionId conn) const {
  const Connection* c = find(conn);
  return c != nullptr && c->state == State::kEstablished;
}

NodeId Transport::peer_of(ConnectionId conn, NodeId self) const {
  const Connection* c = find(conn);
  BRISA_ASSERT_MSG(c != nullptr, "peer_of on unknown connection");
  BRISA_ASSERT_MSG(self == c->initiator || self == c->acceptor,
                   "peer_of: not an endpoint");
  return self == c->initiator ? c->acceptor : c->initiator;
}

std::size_t Transport::open_connections() const {
  std::size_t open = 0;
  for (const ConnSlot& s : slots_) {
    if (s.open && s.conn.state != State::kClosed) ++open;
  }
  return open;
}

std::optional<sim::TimePoint> Transport::transmit_segment(
    NodeId sender, NodeId receiver, std::size_t wire_bytes,
    TrafficClass traffic_class) {
  sim::Duration penalty = sim::Duration::zero();
  const LinkVerdict verdict = resolve_segment_verdict(
      sender, receiver, wire_bytes, traffic_class, &penalty);
  const sim::TimePoint done =
      network_.nic_send(sender, wire_bytes, traffic_class);
  if (verdict == LinkVerdict::kBlackhole) {
    // The segment was transmitted (NIC charged) into a partition.
    network_.note_fault(sender, traffic_class, LinkVerdict::kBlackhole,
                        /*datagram=*/false);
    return std::nullopt;
  }
  return done + penalty +
         network_.fault_adjust(
             sender, receiver,
             network_.latency().sample(sender, receiver,
                                       network_.simulator().rng()));
}

LinkVerdict Transport::resolve_segment_verdict(NodeId sender, NodeId receiver,
                                               std::size_t wire_bytes,
                                               TrafficClass traffic_class,
                                               sim::Duration* extra_delay) {
  LinkVerdict verdict = network_.fault_verdict(sender, receiver);
  std::uint32_t losses = 0;
  while (verdict == LinkVerdict::kDrop) {
    ++losses;
    if (losses >= kMaxConsecutiveLosses) {
      // The path is dead: give up instead of retransmitting again. The
      // fatal hit is counted as the blackhole (by the caller), not as yet
      // another masked drop — segments_dropped stays equal to the
      // retransmissions that actually recovered a loss.
      return LinkVerdict::kBlackhole;
    }
    // Reliable transport masks the loss as one RTO of delay plus a
    // retransmission (which costs real NIC time and upload bytes).
    network_.note_fault(sender, traffic_class, LinkVerdict::kDrop,
                        /*datagram=*/false);
    network_.note_retransmission();
    network_.nic_send(sender, wire_bytes, traffic_class);
    *extra_delay = *extra_delay + network_.config().retransmit_timeout;
    verdict = network_.fault_verdict(sender, receiver);
  }
  return verdict;
}

void Transport::break_connection(ConnectionId conn) {
  sever(conn, /*notify_initiator=*/true, /*notify_acceptor=*/true);
}

void Transport::sever(ConnectionId conn, bool notify_initiator,
                      bool notify_acceptor) {
  Connection* c = find(conn);
  if (c == nullptr || c->state == State::kClosed) return;
  const NodeId initiator = c->initiator;
  const NodeId acceptor = c->acceptor;
  // Messages sent before the link broke are not retroactively affected:
  // the record must outlive both the failure notices and every already-
  // scheduled arrival (the FIFO clamps bound the latest one).
  const sim::TimePoint drain = std::max(c->last_delivery_to_initiator,
                                        c->last_delivery_to_acceptor);
  mark_closed(conn);
  sim::Duration linger = network_.config().failure_detect_base;
  if (notify_initiator) {
    linger = std::max(linger,
                      notify_endpoint_failure(conn, initiator, acceptor,
                                              CloseReason::kPeerFailure));
  }
  if (notify_acceptor) {
    linger = std::max(linger,
                      notify_endpoint_failure(conn, acceptor, initiator,
                                              CloseReason::kPeerFailure));
  }
  sim::Simulator& simulator = network_.simulator();
  const sim::TimePoint erase_at =
      std::max(simulator.now() + linger, drain) +
      sim::Duration::microseconds(1);
  simulator.at(erase_at, [this, conn]() { erase_connection(conn); });
}

sim::Duration Transport::notify_endpoint_failure(ConnectionId conn,
                                                 NodeId endpoint, NodeId peer,
                                                 CloseReason reason) {
  if (!network_.alive(endpoint)) return sim::Duration::zero();
  if (network_.suspended(endpoint)) {
    queue_resume_notice(endpoint, {conn, peer, reason});
    return sim::Duration::zero();
  }
  const sim::Duration detect = network_.sample_failure_detect_delay();
  network_.simulator().after(detect, [this, conn, endpoint, peer, reason]() {
    if (!network_.alive(endpoint)) return;
    if (network_.suspended(endpoint)) {
      // Frozen during the detection window: deliver the notice at resume
      // instead of dropping it.
      queue_resume_notice(endpoint, {conn, peer, reason});
      return;
    }
    if (TransportHandler* h = handler_of(endpoint)) {
      h->on_connection_down(conn, peer, reason);
    }
  });
  return detect;
}

void Transport::queue_resume_notice(NodeId node, PendingNotice notice) {
  if (node.index() >= pending_resume_notices_.size()) {
    pending_resume_notices_.resize(node.index() + 1);
  }
  pending_resume_notices_[node.index()].push_back(notice);
}

void Transport::on_host_suspended(NodeId node) {
  // A freeze severs every connection (established or mid-handshake): peers
  // detect the failure after their delay; the frozen host itself finds its
  // sockets dead when it resumes.
  if (node.index() >= by_host_.size()) return;
  const auto& tracked = by_host_[node.index()];
  const std::vector<ConnectionId> conns(tracked.begin(), tracked.end());
  for (const ConnectionId conn : conns) break_connection(conn);
}

void Transport::on_host_resumed(NodeId node) {
  if (node.index() >= pending_resume_notices_.size()) return;
  const std::vector<PendingNotice> notices =
      std::move(pending_resume_notices_[node.index()]);
  pending_resume_notices_[node.index()].clear();
  for (const PendingNotice& notice : notices) {
    notify_endpoint_failure(notice.conn, node, notice.peer, notice.reason);
  }
}

void Transport::on_host_killed(NodeId node) {
  if (node.index() < pending_resume_notices_.size()) {
    pending_resume_notices_[node.index()].clear();
  }
  if (node.index() >= by_host_.size()) return;
  // Copy: callbacks may mutate the tracking list.
  const auto& tracked = by_host_[node.index()];
  const std::vector<ConnectionId> conns(tracked.begin(), tracked.end());
  for (const ConnectionId conn : conns) {
    Connection* c = find(conn);
    if (c == nullptr || c->state == State::kClosed) continue;
    const NodeId peer = peer_of(conn, node);
    mark_closed(conn);
    if (!network_.alive(peer)) continue;
    const sim::Duration detect = network_.sample_failure_detect_delay();
    network_.simulator().after(detect, [this, conn, peer]() {
      if (!network_.alive(peer)) return;
      Connection* c2 = find(conn);
      if (c2 == nullptr) return;
      if (TransportHandler* h = handler_of(peer)) {
        const NodeId other = peer_of(conn, peer);
        h->on_connection_down(conn, other, CloseReason::kPeerFailure);
      }
      erase_connection(conn);
    });
  }
}

void Transport::mark_closed(ConnectionId conn) {
  Connection* c = find(conn);
  if (c == nullptr) return;
  c->state = State::kClosed;
  untrack(c->initiator, conn);
  untrack(c->acceptor, conn);
}

Transport::Connection* Transport::find(ConnectionId conn) {
  if (conn == kInvalidConnectionId) return nullptr;
  const std::uint32_t slot = slot_of(conn);
  if (slot >= slots_.size()) return nullptr;
  ConnSlot& s = slots_[slot];
  if (!s.open || s.gen != gen_of(conn)) return nullptr;
  return &s.conn;
}

const Transport::Connection* Transport::find(ConnectionId conn) const {
  if (conn == kInvalidConnectionId) return nullptr;
  const std::uint32_t slot = slot_of(conn);
  if (slot >= slots_.size()) return nullptr;
  const ConnSlot& s = slots_[slot];
  if (!s.open || s.gen != gen_of(conn)) return nullptr;
  return &s.conn;
}

}  // namespace brisa::net
