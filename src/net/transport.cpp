#include "net/transport.h"

#include <algorithm>

#include "util/assert.h"
#include "util/logging.h"

namespace brisa::net {

const char* to_string(CloseReason reason) {
  switch (reason) {
    case CloseReason::kLocalClose:
      return "local-close";
    case CloseReason::kRemoteClose:
      return "remote-close";
    case CloseReason::kPeerFailure:
      return "peer-failure";
    case CloseReason::kRefused:
      return "refused";
  }
  return "?";
}

Transport::Transport(Network& network) : network_(network) {
  network_.add_death_listener(this);
  hosts_.resize(network_.host_count());
}

void Transport::ensure_host(std::uint32_t index) {
  if (index >= hosts_.size()) hosts_.resize(index + 1);
}

void Transport::on_host_added(NodeId node) { ensure_host(node.index()); }

void Transport::bind(NodeId node, TransportHandler* handler) {
  ensure_host(node.index());
  hosts_[node.index()].handler = handler;
}

TransportHandler* Transport::handler_of(NodeId node) {
  return node.index() < hosts_.size() ? hosts_[node.index()].handler : nullptr;
}

// --- Half slab ---------------------------------------------------------------

ConnectionId Transport::allocate_half(NodeId at) {
  HostState& hs = hosts_[at.index()];
  std::uint32_t slot;
  if (hs.free_head != kNil) {
    slot = hs.free_head;
    hs.free_head = hs.slots[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(hs.slots.size());
    hs.slots.emplace_back();
  }
  BRISA_ASSERT_MSG(slot + 1 < (1u << kSlotBits), "per-host half slab full");
  HalfSlot& s = hs.slots[slot];
  s.half = Half{};
  s.open = true;
  s.next_free = kNil;
  return pack_id(at.index(), slot, s.gen);
}

void Transport::erase_half(ConnectionId conn) {
  if (conn == kInvalidConnectionId) return;
  const std::uint32_t hidx = host_of(conn);
  if (hidx >= hosts_.size()) return;
  HostState& hs = hosts_[hidx];
  const std::uint32_t slot = slot_of(conn);
  if (slot >= hs.slots.size()) return;
  HalfSlot& s = hs.slots[slot];
  if (!s.open || s.gen != gen_of(conn)) return;  // already erased
  s.open = false;
  // Bumping the generation invalidates every outstanding handle; 0 would
  // make pack_id collide with a gen-0 encoding, so skip it on wraparound.
  s.gen = (s.gen + 1) & ((1u << kGenBits) - 1);
  if (s.gen == 0) s.gen = 1;
  s.next_free = hs.free_head;
  hs.free_head = slot;
}

Transport::Half* Transport::find(ConnectionId conn) {
  if (conn == kInvalidConnectionId) return nullptr;
  const std::uint32_t hidx = host_of(conn);
  if (hidx >= hosts_.size()) return nullptr;
  HostState& hs = hosts_[hidx];
  const std::uint32_t slot = slot_of(conn);
  if (slot >= hs.slots.size()) return nullptr;
  HalfSlot& s = hs.slots[slot];
  if (!s.open || s.gen != gen_of(conn)) return nullptr;
  return &s.half;
}

const Transport::Half* Transport::find(ConnectionId conn) const {
  return const_cast<Transport*>(this)->find(conn);
}

Transport::Half* Transport::find_by_peer_half(NodeId at,
                                              ConnectionId peer_half,
                                              ConnectionId* id_out) {
  if (peer_half == kInvalidConnectionId || at.index() >= hosts_.size()) {
    return nullptr;
  }
  HostState& hs = hosts_[at.index()];
  // peer_half is generation-tagged and therefore globally unique, so the
  // first match is the only one.
  for (std::uint32_t slot = 0; slot < hs.slots.size(); ++slot) {
    HalfSlot& s = hs.slots[slot];
    if (s.open && s.half.peer_half == peer_half) {
      *id_out = pack_id(at.index(), slot, s.gen);
      return &s.half;
    }
  }
  return nullptr;
}

// --- Handshake ---------------------------------------------------------------

ConnectionId Transport::connect(NodeId from, NodeId to) {
  BRISA_ASSERT_MSG(from != to, "self-connection");
  BRISA_ASSERT_MSG(network_.alive(from), "dead host calling connect");
  if (network_.suspended(from)) {
    // Frozen initiator: the SYN never leaves; resolve as a refusal once the
    // host wakes. The id is allocated and immediately retired, so it is
    // unique but never live.
    const ConnectionId conn = allocate_half(from);
    erase_half(conn);
    network_.note_fault(from, TrafficClass::kMembership,
                        LinkVerdict::kBlackhole, /*datagram=*/false);
    schedule_failure_notice(from, conn, to, CloseReason::kRefused);
    return conn;
  }
  const ConnectionId conn = allocate_half(from);
  Half* h = find(conn);
  h->peer = to;
  h->state = State::kSynSent;
  h->initiated = true;

  // SYN: from -> to, subject to the fault layer.
  const std::optional<sim::TimePoint> syn_sent = transmit_segment(
      from, to, kControlSegmentBytes, TrafficClass::kMembership);
  if (!syn_sent) {
    // Partitioned link: SYN vanishes, initiator times out.
    erase_half(conn);
    schedule_failure_notice(from, conn, to, CloseReason::kRefused);
    return conn;
  }
  // The SYN shares the outbound FIFO clamp with data and FIN, so teardown
  // segments of a later connection cannot overtake it.
  const sim::TimePoint syn_arrival = clamp_fifo(*h, *syn_sent);
  network_.simulator().at_host(
      to.index(), syn_arrival,
      [this, conn, from, to]() { handle_syn(conn, from, to); });
  return conn;
}

void Transport::handle_syn(ConnectionId initiator_half, NodeId from,
                           NodeId to) {
  if (!network_.responsive(to)) {
    // Dead or frozen acceptor: initiator sees a refusal after its detection
    // delay.
    schedule_remote_sever(from, initiator_half, to, CloseReason::kRefused,
                          network_.simulator().lookahead());
    return;
  }
  network_.charge_receive(to, kControlSegmentBytes, TrafficClass::kMembership);
  const ConnectionId b_id = allocate_half(to);
  Half* b = find(b_id);
  b->peer = from;
  b->peer_half = initiator_half;
  b->state = State::kEstablished;
  b->initiated = false;

  // SYN-ACK: to -> from, transmitted *before* the acceptor's handler runs:
  // the FIFO clamp then orders it ahead of anything the handler does to the
  // fresh connection (data, or even an immediate FIN), so the initiator
  // always learns the acceptor's half id first.
  const std::optional<sim::TimePoint> ack_sent = transmit_segment(
      to, from, kControlSegmentBytes, TrafficClass::kMembership);
  if (!ack_sent) {
    // SYN-ACK lost to a partition: the acceptor never saw the connection
    // (no callback fired yet), so retire its half silently; the initiator
    // sees a failed dial.
    erase_half(b_id);
    schedule_remote_sever(from, initiator_half, to, CloseReason::kRefused,
                          network_.simulator().lookahead());
    return;
  }
  const sim::TimePoint ack_arrival = clamp_fifo(*b, *ack_sent);
  network_.simulator().at_host(
      from.index(), ack_arrival,
      [this, initiator_half, b_id, from, to]() {
        handle_syn_ack(initiator_half, b_id, from, to);
      });
  // Acceptor considers the connection up as soon as it replied SYN-ACK.
  if (TransportHandler* h = handler_of(to)) {
    h->on_connection_up(b_id, from, /*initiated=*/false);
  }
}

void Transport::handle_syn_ack(ConnectionId initiator_half,
                               ConnectionId acceptor_half, NodeId from,
                               NodeId to) {
  Half* a = find(initiator_half);
  if (a == nullptr || a->state != State::kSynSent) {
    // The dial is gone (initiator killed or frozen meanwhile: the serial
    // teardown erased its halves, and a still-kSynSent half has no
    // peer_half for that teardown to sever). Tell the acceptor, which
    // already considers the connection up.
    schedule_remote_sever(to, acceptor_half, from, CloseReason::kPeerFailure,
                          network_.simulator().lookahead());
    return;
  }
  network_.charge_receive(from, kControlSegmentBytes,
                          TrafficClass::kMembership);
  a->state = State::kEstablished;
  a->peer_half = acceptor_half;
  if (TransportHandler* h = handler_of(from)) {
    h->on_connection_up(initiator_half, to, /*initiated=*/true);
  }
}

// --- Teardown ----------------------------------------------------------------

void Transport::close(ConnectionId conn, NodeId closer) {
  Half* h = find(conn);
  if (h == nullptr || h->state == State::kClosed) return;
  BRISA_ASSERT_MSG(host_of(conn) == closer.index(), "close: not the owner");
  const NodeId peer = h->peer;
  if (!network_.responsive(closer)) {
    h->state = State::kClosed;
    erase_half(conn);
    return;
  }
  // FIN: closer -> peer. Shares the per-direction FIFO clamp with send(),
  // so it cannot overtake data (or the SYN-ACK) already in flight.
  const std::optional<sim::TimePoint> fin_sent = transmit_segment(
      closer, peer, kControlSegmentBytes, TrafficClass::kMembership);
  if (!fin_sent) {
    // FIN vanished into the partition: the peer sees a failure after its
    // detection delay (RST-on-timeout) instead of a graceful close; the
    // closer needs no callback (it already knows).
    const ConnectionId peer_half = h->peer_half;
    h->state = State::kClosed;
    erase_half(conn);
    if (peer_half != kInvalidConnectionId && network_.alive(peer)) {
      schedule_remote_sever(peer, peer_half, closer,
                            CloseReason::kPeerFailure,
                            network_.simulator().lookahead());
    }
    return;
  }
  const sim::TimePoint fin_arrival = clamp_fifo(*h, *fin_sent);
  h->state = State::kClosed;
  // Inbound segments still in flight reference this half (checked at
  // arrival); keep the slot until the FIN has reached the peer's side.
  network_.simulator().at_host(closer.index(), fin_arrival,
                               [this, conn]() { erase_half(conn); });
  network_.simulator().at_host(
      peer.index(), fin_arrival,
      [this, peer, closer, conn]() { handle_fin(peer, closer, conn); });
}

void Transport::handle_fin(NodeId peer, NodeId closer,
                           ConnectionId closer_half) {
  if (!network_.alive(peer)) return;
  if (network_.suspended(peer)) {
    // Frozen receiver: the FIN is lost, but the freeze itself already
    // severed the peer's half and queued its resume notice.
    network_.note_rx_suppressed(peer);
    return;
  }
  network_.charge_receive(peer, kControlSegmentBytes,
                          TrafficClass::kMembership);
  ConnectionId b_id = kInvalidConnectionId;
  Half* b = find_by_peer_half(peer, closer_half, &b_id);
  if (b == nullptr) return;  // already severed locally
  if (b->state == State::kClosed) return;  // simultaneous close: peer knows
  if (TransportHandler* h = handler_of(peer)) {
    h->on_connection_down(b_id, closer, CloseReason::kRemoteClose);
  }
  erase_half(b_id);
}

void Transport::break_connection(ConnectionId conn) {
  Half* h = find(conn);
  if (h == nullptr || h->state == State::kClosed) return;
  const NodeId me(host_of(conn));
  const NodeId peer = h->peer;
  const ConnectionId peer_half = h->peer_half;
  // The record stays (closed) until the local notice fires, admitting
  // segments already in flight toward us — TCP delivers bytes on the wire.
  h->state = State::kClosed;
  schedule_failure_notice(me, conn, peer, CloseReason::kPeerFailure);
  if (peer_half != kInvalidConnectionId && network_.alive(peer)) {
    schedule_remote_sever(peer, peer_half, me, CloseReason::kPeerFailure,
                          network_.simulator().lookahead());
  }
}

void Transport::schedule_failure_notice(NodeId at, ConnectionId conn,
                                        NodeId peer, CloseReason reason) {
  if (!network_.alive(at)) {
    erase_half(conn);
    return;
  }
  if (network_.suspended(at)) {
    queue_resume_notice(at, {conn, peer, reason});
    erase_half(conn);
    return;
  }
  const sim::Duration detect = network_.sample_failure_detect_delay(at);
  network_.simulator().after_host(
      at.index(), detect, [this, conn, at, peer, reason]() {
        if (!network_.alive(at)) {
          erase_half(conn);
          return;
        }
        if (network_.suspended(at)) {
          // Frozen during the detection window: deliver the notice at
          // resume instead of dropping it.
          queue_resume_notice(at, {conn, peer, reason});
          erase_half(conn);
          return;
        }
        if (TransportHandler* h = handler_of(at)) {
          h->on_connection_down(conn, peer, reason);
        }
        erase_half(conn);
      });
}

void Transport::schedule_remote_sever(NodeId target, ConnectionId target_half,
                                      NodeId peer, CloseReason reason,
                                      sim::Duration delay) {
  // The delay is passed in, never derived from the execution phase: lane
  // events use the lookahead (cross-lane discipline), serial phases zero.
  // Both are shard-count-invariant.
  network_.simulator().at_host(
      target.index(), network_.simulator().now() + delay,
      [this, target, target_half, peer, reason]() {
        handle_remote_sever(target, target_half, peer, reason);
      });
}

void Transport::handle_remote_sever(NodeId target, ConnectionId target_half,
                                    NodeId peer, CloseReason reason) {
  Half* h = find(target_half);
  if (h == nullptr || h->state == State::kClosed) return;
  h->state = State::kClosed;
  schedule_failure_notice(target, target_half, peer, reason);
}

// --- Data path ---------------------------------------------------------------

bool Transport::send(ConnectionId conn, NodeId sender, MessagePtr message,
                     TrafficClass traffic_class) {
  BRISA_ASSERT(message != nullptr);
  if (host_of(conn) != sender.index()) return false;
  Half* h = find(conn);
  if (h == nullptr || h->state != State::kEstablished) return false;
  // No suspension check needed: suspending a host severs every one of its
  // halves, so the established check above already rejects frozen senders.
  if (!network_.alive(sender)) return false;
  const NodeId receiver = h->peer;

  const std::size_t wire_bytes = message->wire_size();
  const std::optional<sim::TimePoint> sent =
      transmit_segment(sender, receiver, wire_bytes, traffic_class);
  if (!sent) {
    // The segment was transmitted into a partition: TCP gives up and the
    // connection breaks, both ends learning after their detection delays.
    // The send itself was accepted — failure is async, exactly like a real
    // socket write.
    break_connection(conn);
    return true;
  }
  // FIFO per direction: a message may not overtake its predecessors.
  const sim::TimePoint arrival = clamp_fifo(*h, *sent);

  // In-flight data outlives a graceful close (TCP delivers bytes already on
  // the wire), so delivery only checks that the receiver's half still
  // exists and the receiver is alive — not that the state is established.
  sim::DeliverEvent event;
  event.sink = this;
  event.token = const_cast<void*>(static_cast<const void*>(message.detach()));
  event.drop_token = &release_message_token;
  event.id = h->peer_half;
  event.from = sender.index();
  event.to = receiver.index();
  event.bytes = static_cast<std::uint32_t>(wire_bytes);
  event.tag = kSegmentArrival;
  event.tclass = static_cast<std::uint16_t>(traffic_class);
  network_.simulator().at_deliver(arrival, event);
  return true;
}

void Transport::on_deliver(const sim::DeliverEvent& event) {
  MessagePtr message =
      MessageRef::attach(static_cast<const Message*>(event.token));
  const ConnectionId conn = event.id;  // the receiver's own half
  const NodeId sender(event.from);
  const NodeId receiver(event.to);
  if (!network_.alive(receiver)) return;
  if (network_.suspended(receiver)) {
    network_.note_rx_suppressed(receiver);
    return;
  }
  if (event.tag == kSegmentArrival) {
    // The record gates only the wire stage: once the bytes have arrived
    // (receive charged below), a subsequent half erase must not eat the
    // message while it sits in the CPU queue.
    if (find(conn) == nullptr) return;
    network_.charge_receive(receiver, event.bytes,
                            static_cast<TrafficClass>(event.tclass));
    const sim::TimePoint ready = network_.cpu_deliver(
        receiver, network_.simulator().now(), event.bytes);
    if (ready != network_.simulator().now()) {
      sim::DeliverEvent next = event;
      next.tag = kSegmentCpuReady;
      next.token = const_cast<void*>(
          static_cast<const void*>(message.detach()));
      network_.simulator().at_deliver(ready, next);
      return;
    }
  }
  if (TransportHandler* h = handler_of(receiver)) {
    h->on_message(conn, sender, std::move(message));
  }
}

// --- Queries -----------------------------------------------------------------

bool Transport::established(ConnectionId conn) const {
  const Half* h = find(conn);
  return h != nullptr && h->state == State::kEstablished;
}

NodeId Transport::peer_of(ConnectionId conn, NodeId self) const {
  const Half* h = find(conn);
  BRISA_ASSERT_MSG(h != nullptr, "peer_of on unknown connection");
  BRISA_ASSERT_MSG(host_of(conn) == self.index(), "peer_of: not the owner");
  return h->peer;
}

std::size_t Transport::open_connections() const {
  std::size_t open = 0;
  for (const HostState& hs : hosts_) {
    for (const HalfSlot& s : hs.slots) {
      if (s.open && s.half.state != State::kClosed) ++open;
    }
  }
  return open;
}

// --- Segments ----------------------------------------------------------------

std::optional<sim::TimePoint> Transport::transmit_segment(
    NodeId sender, NodeId receiver, std::size_t wire_bytes,
    TrafficClass traffic_class) {
  sim::Duration penalty = sim::Duration::zero();
  const LinkVerdict verdict = resolve_segment_verdict(
      sender, receiver, wire_bytes, traffic_class, &penalty);
  const sim::TimePoint done =
      network_.nic_send(sender, wire_bytes, traffic_class);
  if (verdict == LinkVerdict::kBlackhole) {
    // The segment was transmitted (NIC charged) into a partition.
    network_.note_fault(sender, traffic_class, LinkVerdict::kBlackhole,
                        /*datagram=*/false);
    return std::nullopt;
  }
  return done + penalty + network_.sample_flight(sender, receiver);
}

LinkVerdict Transport::resolve_segment_verdict(NodeId sender, NodeId receiver,
                                               std::size_t wire_bytes,
                                               TrafficClass traffic_class,
                                               sim::Duration* extra_delay) {
  LinkVerdict verdict = network_.fault_verdict(sender, receiver);
  std::uint32_t losses = 0;
  while (verdict == LinkVerdict::kDrop) {
    ++losses;
    if (losses >= kMaxConsecutiveLosses) {
      // The path is dead: give up instead of retransmitting again. The
      // fatal hit is counted as the blackhole (by the caller), not as yet
      // another masked drop — segments_dropped stays equal to the
      // retransmissions that actually recovered a loss.
      return LinkVerdict::kBlackhole;
    }
    // Reliable transport masks the loss as one RTO of delay plus a
    // retransmission (which costs real NIC time and upload bytes).
    network_.note_fault(sender, traffic_class, LinkVerdict::kDrop,
                        /*datagram=*/false);
    network_.note_retransmission(sender);
    network_.nic_send(sender, wire_bytes, traffic_class);
    *extra_delay = *extra_delay + network_.config().retransmit_timeout;
    verdict = network_.fault_verdict(sender, receiver);
  }
  return verdict;
}

// --- Fail/recover hooks (serial phases) -------------------------------------

void Transport::queue_resume_notice(NodeId node, PendingNotice notice) {
  ensure_host(node.index());
  hosts_[node.index()].resume_notices.push_back(notice);
}

void Transport::on_host_killed(NodeId node) {
  if (node.index() >= hosts_.size()) return;
  HostState& hs = hosts_[node.index()];
  hs.resume_notices.clear();
  for (std::uint32_t slot = 0; slot < hs.slots.size(); ++slot) {
    HalfSlot& s = hs.slots[slot];
    if (!s.open) continue;
    const ConnectionId conn = pack_id(node.index(), slot, s.gen);
    const NodeId peer = s.half.peer;
    const ConnectionId peer_half = s.half.peer_half;
    const bool was_closed = s.half.state == State::kClosed;
    erase_half(conn);
    // Already-closed halves told their peer when they closed; a still-
    // kSynSent half (no peer_half yet) is resolved by handle_syn_ack
    // finding it gone.
    if (was_closed) continue;
    if (peer_half != kInvalidConnectionId && network_.alive(peer)) {
      schedule_remote_sever(peer, peer_half, node, CloseReason::kPeerFailure,
                            sim::Duration::zero());
    }
  }
}

void Transport::on_host_suspended(NodeId node) {
  // A freeze severs every connection (established or mid-handshake): peers
  // detect the failure after their delay; the frozen host itself finds its
  // sockets dead when it resumes.
  if (node.index() >= hosts_.size()) return;
  HostState& hs = hosts_[node.index()];
  for (std::uint32_t slot = 0; slot < hs.slots.size(); ++slot) {
    HalfSlot& s = hs.slots[slot];
    if (!s.open) continue;
    const ConnectionId conn = pack_id(node.index(), slot, s.gen);
    const NodeId peer = s.half.peer;
    const ConnectionId peer_half = s.half.peer_half;
    const bool was_closed = s.half.state == State::kClosed;
    erase_half(conn);
    // A closed half already has its failure notice pending; that notice
    // sees the suspension and re-queues itself for resume.
    if (was_closed) continue;
    queue_resume_notice(node, {conn, peer, CloseReason::kPeerFailure});
    if (peer_half != kInvalidConnectionId && network_.alive(peer)) {
      schedule_remote_sever(peer, peer_half, node, CloseReason::kPeerFailure,
                            sim::Duration::zero());
    }
  }
}

void Transport::on_host_resumed(NodeId node) {
  if (node.index() >= hosts_.size()) return;
  std::vector<PendingNotice> notices =
      std::move(hosts_[node.index()].resume_notices);
  hosts_[node.index()].resume_notices.clear();
  for (const PendingNotice& notice : notices) {
    schedule_failure_notice(node, notice.conn, notice.peer, notice.reason);
  }
}

}  // namespace brisa::net
