#include "net/latency.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/bloom.h"  // mix64

namespace brisa::net {

namespace {

/// Deterministic uniform double in [0,1) from a hash input.
double hashed_uniform(std::uint64_t x) {
  return static_cast<double>(util::mix64(x) >> 11) * 0x1.0p-53;
}

/// Deterministic standard normal from two hashed uniforms (Box–Muller).
double hashed_normal(std::uint64_t x) {
  double u1 = hashed_uniform(x);
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = hashed_uniform(x ^ 0xdeadbeefcafef00dULL);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

sim::Duration ClusterLatencyModel::sample(NodeId /*from*/, NodeId /*to*/,
                                          sim::CounterRng& rng) {
  const double jitter_us = rng.exponential(config_.jitter_mean_us);
  return config_.base_latency +
         sim::Duration::microseconds(static_cast<std::int64_t>(jitter_us));
}

sim::Duration ClusterLatencyModel::base(NodeId /*from*/,
                                        NodeId /*to*/) const {
  return config_.base_latency;
}

PlanetLabLatencyModel::Placement PlanetLabLatencyModel::placement(
    NodeId node) const {
  const std::uint64_t h = config_.placement_seed ^
                          (static_cast<std::uint64_t>(node.index()) + 1) *
                              0x9e3779b97f4a7c15ULL;
  Placement p;
  p.x_ms = hashed_uniform(h) * config_.plane_ms;
  p.y_ms = hashed_uniform(h ^ 0x1111111111111111ULL) * config_.plane_ms;
  p.access_ms = std::exp(config_.access_mu +
                         config_.access_sigma *
                             hashed_normal(h ^ 0x2222222222222222ULL));
  return p;
}

sim::Duration PlanetLabLatencyModel::base(NodeId from, NodeId to) const {
  if (from == to) return sim::Duration::microseconds(50);
  const Placement a = placement(from);
  const Placement b = placement(to);
  const double dx = a.x_ms - b.x_ms;
  const double dy = a.y_ms - b.y_ms;
  // Propagation scales with plane distance; 0.5 ms floor models the last-mile.
  const double prop_ms = std::max(0.5, std::sqrt(dx * dx + dy * dy) * 0.5);
  const double total_ms = prop_ms + a.access_ms + b.access_ms;
  return sim::Duration::microseconds(static_cast<std::int64_t>(total_ms * 1e3));
}

sim::Duration PlanetLabLatencyModel::sample(NodeId from, NodeId to,
                                            sim::CounterRng& rng) {
  const double jitter_ms = rng.exponential(config_.jitter_mean_ms);
  return base(from, to) +
         sim::Duration::microseconds(static_cast<std::int64_t>(jitter_ms * 1e3));
}

std::size_t ClusteredWanLatencyModel::cluster_of(NodeId node) const {
  if (config_.clusters <= 1) return 0;
  const std::uint64_t h = config_.placement_seed ^
                          (static_cast<std::uint64_t>(node.index()) + 1) *
                              0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(util::mix64(h) % config_.clusters);
}

sim::Duration ClusteredWanLatencyModel::base(NodeId from, NodeId to) const {
  const std::size_t a = cluster_of(from);
  const std::size_t b = cluster_of(to);
  if (a == b) {
    return sim::Duration::microseconds(
        static_cast<std::int64_t>(config_.intra_ms * 1e3));
  }
  // Symmetric per-pair draw: hash the unordered cluster pair.
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(a, b));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(a, b));
  const double u =
      hashed_uniform(config_.placement_seed ^ ((lo << 32) | (hi + 1)));
  const double ms =
      config_.inter_min_ms + u * (config_.inter_max_ms - config_.inter_min_ms);
  return sim::Duration::microseconds(static_cast<std::int64_t>(ms * 1e3));
}

sim::Duration ClusteredWanLatencyModel::sample(NodeId from, NodeId to,
                                               sim::CounterRng& rng) {
  const double jitter_ms = rng.exponential(config_.jitter_mean_ms);
  return base(from, to) + sim::Duration::microseconds(
                              static_cast<std::int64_t>(jitter_ms * 1e3));
}

sim::Duration FatTreeLatencyModel::base(NodeId from, NodeId to) const {
  const std::size_t hosts_per_pod =
      std::max<std::size_t>(1, config_.hosts_per_rack) *
      std::max<std::size_t>(1, config_.racks_per_pod);
  const std::size_t rack_a =
      from.index() / std::max<std::size_t>(1, config_.hosts_per_rack);
  const std::size_t rack_b =
      to.index() / std::max<std::size_t>(1, config_.hosts_per_rack);
  double us = config_.inter_pod_us;
  if (rack_a == rack_b) {
    us = config_.intra_rack_us;
  } else if (from.index() / hosts_per_pod == to.index() / hosts_per_pod) {
    us = config_.intra_pod_us;
  }
  return sim::Duration::microseconds(static_cast<std::int64_t>(us));
}

sim::Duration FatTreeLatencyModel::sample(NodeId from, NodeId to,
                                          sim::CounterRng& rng) {
  const double jitter_us = rng.exponential(config_.jitter_mean_us);
  return base(from, to) +
         sim::Duration::microseconds(static_cast<std::int64_t>(jitter_us));
}

std::unique_ptr<LatencyModel> make_cluster_latency() {
  return std::make_unique<ClusterLatencyModel>();
}

std::unique_ptr<LatencyModel> make_planetlab_latency() {
  return std::make_unique<PlanetLabLatencyModel>();
}

std::unique_ptr<LatencyModel> make_clustered_wan_latency(
    ClusteredWanLatencyModel::Config config) {
  return std::make_unique<ClusteredWanLatencyModel>(config);
}

std::unique_ptr<LatencyModel> make_fat_tree_latency(
    FatTreeLatencyModel::Config config) {
  return std::make_unique<FatTreeLatencyModel>(config);
}

}  // namespace brisa::net
