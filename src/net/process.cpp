#include "net/process.h"

namespace brisa::net {

bool Process::alive_gate(const void* ctx, std::uint32_t arg) {
  return static_cast<const Network*>(ctx)->alive(NodeId(arg));
}

sim::EventId Process::after(sim::Duration delay, sim::Callback fn) {
  // Host-lane timer: fires on this host's shard under sharded execution.
  return simulator().after_host_gated(id_.index(), delay,
                                      &Process::alive_gate, &network_,
                                      id_.index(), std::move(fn));
}

sim::PeriodicId Process::every(sim::Duration period, sim::Callback fn) {
  return simulator().every_host_gated(id_.index(), period,
                                      &Process::alive_gate, &network_,
                                      id_.index(), std::move(fn));
}

}  // namespace brisa::net
