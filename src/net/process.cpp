#include "net/process.h"

namespace brisa::net {

sim::EventId Process::after(sim::Duration delay, std::function<void()> fn) {
  return simulator().after(delay, [this, fn = std::move(fn)]() {
    if (!alive()) return;
    fn();
  });
}

void Process::schedule_periodic_guarded(
    sim::Duration period, std::function<void()> fn,
    const std::shared_ptr<sim::Simulator::PeriodicHandle>& handle) {
  handle->pending =
      simulator().after(period, [this, period, fn = std::move(fn), handle]() {
        if (handle->cancelled || !alive()) return;
        fn();
        if (!handle->cancelled && alive()) {
          schedule_periodic_guarded(period, fn, handle);
        }
      });
}

std::shared_ptr<sim::Simulator::PeriodicHandle> Process::every(
    sim::Duration period, std::function<void()> fn) {
  auto handle = std::make_shared<sim::Simulator::PeriodicHandle>();
  schedule_periodic_guarded(period, std::move(fn), handle);
  return handle;
}

}  // namespace brisa::net
