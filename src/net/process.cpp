#include "net/process.h"

namespace brisa::net {

bool Process::alive_gate(const void* ctx, std::uint32_t arg) {
  return static_cast<const Network*>(ctx)->alive(NodeId(arg));
}

sim::EventId Process::after(sim::Duration delay, sim::Callback fn) {
  return simulator().after_gated(delay, &Process::alive_gate, &network_,
                                 id_.index(), std::move(fn));
}

sim::PeriodicId Process::every(sim::Duration period, sim::Callback fn) {
  return simulator().every_gated(period, &Process::alive_gate, &network_,
                                 id_.index(), std::move(fn));
}

}  // namespace brisa::net
