// Bounded seq -> payload_bytes serving store for the pull/anti-entropy
// baselines.
//
// Gossip and TAG keep one FlatSeqMap<std::size_t> per stream: the set of
// payloads a node holds and can serve to lagging peers. Under the `[limits]`
// section that store gets entry/byte ceilings; this wrapper owns the map,
// tracks held bytes, and evicts deterministically on insert. With default
// limits (the off state) insert() is the plain map assignment plus one
// always-false bound check — behavior and iteration order are identical to
// the unwrapped map, which is what the zero-cost-when-off golden tests pin.
//
// IMPORTANT: the store must no longer double as the duplicate-suppression
// set once eviction exists (a re-arriving evicted seq would re-deliver).
// Callers dedup against a separate util::SeqSet of delivered seqs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/limits.h"
#include "util/flat_seq_map.h"

namespace brisa::net {

class BoundedSeqStore {
 public:
  using Map = util::FlatSeqMap<std::size_t>;
  using const_iterator = Map::const_iterator;

  /// Installs the store bound (node construction time; not re-entrant with
  /// held entries).
  void configure(const Limits& limits) {
    max_entries_ = limits.store_entries;
    max_bytes_ = limits.store_bytes;
    policy_ = limits.eviction;
  }

  /// Stores `seq` -> `bytes`, then evicts until within bounds.
  /// `delivered_upto` is the caller's contiguity watermark (seqs below it
  /// were delivered in order): kDeliveredFirst evicts that prefix first and
  /// only drops newest-first when no such entry remains.
  void insert(std::uint64_t seq, std::size_t bytes,
              std::uint64_t delivered_upto) {
    std::size_t& slot = map_[seq];
    bytes_ += bytes - slot;
    slot = bytes;
    while ((max_entries_ != 0 && map_.size() > max_entries_) ||
           (max_bytes_ != 0 && bytes_ > max_bytes_)) {
      evict_one(delivered_upto);
    }
  }

  [[nodiscard]] bool contains(std::uint64_t seq) const {
    return map_.contains(seq);
  }
  [[nodiscard]] std::size_t count(std::uint64_t seq) const {
    return map_.count(seq);
  }
  [[nodiscard]] const_iterator lower_bound(std::uint64_t seq) const {
    return map_.lower_bound(seq);
  }
  [[nodiscard]] const_iterator begin() const { return map_.begin(); }
  [[nodiscard]] const_iterator end() const { return map_.end(); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }

  /// Payload bytes currently held.
  [[nodiscard]] std::size_t payload_bytes() const { return bytes_; }
  /// Entries evicted over the store's lifetime.
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  void evict_one(std::uint64_t delivered_upto) {
    auto victim = map_.begin();  // lowest seq held
    if (policy_ == EvictionPolicy::kDeliveredFirst &&
        (*victim).first >= delivered_upto) {
      // Nothing below the watermark left: protect the in-flight low entries
      // (peers may still need them to close their gaps) and drop the newest
      // speculative one instead — it is the most likely to be re-offered by
      // the ongoing epidemic rounds.
      victim = --map_.end();
    }
    bytes_ -= (*victim).second;
    map_.erase((*victim).first);
    ++evictions_;
  }

  Map map_;
  std::size_t max_entries_ = 0;
  std::size_t max_bytes_ = 0;
  EvictionPolicy policy_ = EvictionPolicy::kOldestFirst;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace brisa::net
