// Base class for a protocol stack running on one simulated host.
//
// Crash-stop failures happen at arbitrary instants, but the protocol objects
// live until the end of the run (they own measurement state). Timers created
// through Process therefore self-disarm when the host is dead, so no protocol
// code ever runs "post mortem". The liveness check rides as a capture-free
// gate on the event itself (no wrapper closure, no allocation): one-shot
// timers are skipped, periodic timers are retired by the simulator.
#pragma once

#include "net/network.h"
#include "net/node_id.h"
#include "sim/simulator.h"

namespace brisa::net {

class Process {
 public:
  Process(Network& network, NodeId id) : network_(network), id_(id) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] bool alive() const { return network_.alive(id_); }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] sim::Simulator& simulator() { return network_.simulator(); }
  [[nodiscard]] sim::TimePoint now() const {
    return network_.simulator().now();
  }

  /// One-shot timer that silently drops if the host died meanwhile. The
  /// returned handle is a value: store it freely, cancel() races are safe.
  sim::EventId after(sim::Duration delay, sim::Callback fn);

  /// Cancels a timer created with after(). Stale handles are a no-op.
  void cancel(sim::EventId id) { simulator().cancel(id); }

  /// Periodic timer with the same liveness guard; retired automatically
  /// when the host dies, or explicitly via cancel_periodic.
  sim::PeriodicId every(sim::Duration period, sim::Callback fn);

  void cancel_periodic(sim::PeriodicId id) {
    simulator().cancel_periodic(id);
  }

 private:
  /// Capture-free gate: "is host `arg` of this network still alive?"
  static bool alive_gate(const void* ctx, std::uint32_t arg);

  Network& network_;
  NodeId id_;
};

}  // namespace brisa::net
