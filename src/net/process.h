// Base class for a protocol stack running on one simulated host.
//
// Crash-stop failures happen at arbitrary instants, but the protocol objects
// live until the end of the run (they own measurement state). Timers created
// through Process therefore self-disarm when the host is dead, so no protocol
// code ever runs "post mortem".
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/network.h"
#include "net/node_id.h"
#include "sim/simulator.h"

namespace brisa::net {

class Process {
 public:
  Process(Network& network, NodeId id) : network_(network), id_(id) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] bool alive() const { return network_.alive(id_); }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] sim::Simulator& simulator() { return network_.simulator(); }
  [[nodiscard]] sim::TimePoint now() const {
    return network_.simulator().now();
  }

  /// One-shot timer that silently drops if the host died meanwhile.
  sim::EventId after(sim::Duration delay, std::function<void()> fn);

  /// Periodic timer with the same liveness guard; cancelled automatically
  /// when the host dies (the guard stops rescheduling).
  std::shared_ptr<sim::Simulator::PeriodicHandle> every(
      sim::Duration period, std::function<void()> fn);

 private:
  void schedule_periodic_guarded(
      sim::Duration period, std::function<void()> fn,
      const std::shared_ptr<sim::Simulator::PeriodicHandle>& handle);

  Network& network_;
  NodeId id_;
};

}  // namespace brisa::net
