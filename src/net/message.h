// Wire messages.
//
// Protocols exchange typed message objects; the simulator only needs their
// size (for NIC serialization and bandwidth accounting) and their kind (for
// demultiplexing inside a node's protocol stack). Payload bytes are never
// materialized — the paper's payloads are opaque random bit strings, so only
// their length matters.
//
// Messages are reference-counted intrusively and allocated from a per-type
// recycling pool (see net/message_pool.h), so the steady-state send path
// performs no heap allocation: a delivery holds a reference, fan-out shares
// one object across receivers, and the storage returns to the pool when the
// last reference drops.
//
// The count is *conditionally* atomic: single-threaded runs (shards == 1,
// sweeps, tests) pay plain relaxed load/store — identical codegen to a plain
// integer — while sharded execution flips a sticky process-wide flag
// (Message::enable_concurrent_refs) that upgrades every retain/release to a
// real RMW, because one fan-out message is then referenced from several
// shard threads at once.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace brisa::net {

/// Every distinct protocol message in the system. Grouped by subsystem so a
/// stack can route on ranges if it ever needs to.
enum class MessageKind : std::uint16_t {
  // Transport-internal (handshake); never surfaced to handlers.
  kSyn,
  kSynAck,
  kFin,

  // HyParView (§II-A)
  kHpvJoin,
  kHpvForwardJoin,
  kHpvNeighbor,
  kHpvNeighborReply,
  kHpvDisconnect,
  kHpvShuffle,
  kHpvShuffleReply,
  kHpvKeepAlive,
  kHpvKeepAliveReply,

  // Cyclon
  kCyclonShuffle,
  kCyclonShuffleReply,

  // BRISA (§II-C to §II-G)
  kBrisaData,
  kBrisaDeactivate,
  kBrisaResume,          ///< "re-activate your outbound link to me"
  kBrisaResumeAck,       ///< carries the responder's position metadata
  kBrisaReactivateOrder, ///< hard repair: flows down the broken subtree
  kBrisaRetransmitRequest,

  // SimpleGossip baseline
  kGossipRumor,
  kGossipAntiEntropyRequest,
  kGossipAntiEntropyReply,

  // SimpleTree baseline
  kTreeJoinRequest,
  kTreeJoinReply,
  kTreeAttach,
  kTreeData,

  // TAG baseline
  kTagTailQuery,
  kTagTailReply,
  kTagAppendRequest,
  kTagAppendReply,
  kTagListProbe,
  kTagListProbeReply,
  kTagListUpdate,
  kTagPullRequest,
  kTagPullReply,

  // Tests / examples
  kTestPing,
  kTestPayload,
};

/// Fixed per-message framing overhead charged on the wire (Ethernet + IP +
/// TCP headers, amortized). Keeping it explicit makes bandwidth numbers
/// comparable with the paper's KB/s measurements.
inline constexpr std::size_t kFrameOverheadBytes = 66;

/// Identifies one dissemination stream (topic). Every data-bearing protocol
/// message carries the stream it belongs to, so N independent streams can be
/// multiplexed over one membership substrate and demultiplexed at the
/// receiving node. Stream ids are expected to be small dense integers
/// (0..K-1): per-stream state lives in flat vectors indexed by them.
using StreamId = std::uint32_t;
inline constexpr StreamId kDefaultStream = 0;
/// Bytes a stream id occupies on the wire.
inline constexpr std::size_t kWireStreamBytes = 4;

class Message {
 public:
  Message() = default;
  /// Copying a message copies its *content* only: the refcount and recycler
  /// belong to the storage block and are (re)installed by the pool.
  Message(const Message&) {}
  Message& operator=(const Message&) { return *this; }
  virtual ~Message() = default;

  [[nodiscard]] virtual MessageKind kind() const = 0;

  /// Bytes of protocol content (headers + metadata + payload), excluding
  /// kFrameOverheadBytes which the network adds once per message.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Sticky: once any simulator in the process runs multi-shard, every
  /// refcount op becomes a real atomic RMW. Called from serial setup code
  /// (before worker threads touch any message); never unset, so a later
  /// single-threaded run merely pays the (correct) atomic cost.
  static void enable_concurrent_refs() {
    concurrent_refs_.store(true, std::memory_order_relaxed);
  }

 private:
  friend class MessageRef;
  template <typename T>
  friend class MessagePool;

  /// Destroys the object and returns its storage wherever it came from.
  using Recycler = void (*)(const Message*);

  void retain() const {
    if (concurrent_refs_.load(std::memory_order_relaxed)) [[unlikely]] {
      refs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      refs_.store(refs_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    }
  }
  /// Returns true when this call dropped the last reference.
  [[nodiscard]] bool release_ref() const {
    if (concurrent_refs_.load(std::memory_order_relaxed)) [[unlikely]] {
      return refs_.fetch_sub(1, std::memory_order_acq_rel) == 1;
    }
    const std::uint32_t left = refs_.load(std::memory_order_relaxed) - 1;
    refs_.store(left, std::memory_order_relaxed);
    return left == 0;
  }

  static inline std::atomic<bool> concurrent_refs_{false};

  mutable std::atomic<std::uint32_t> refs_{0};
  mutable Recycler recycler_ = nullptr;
};

/// Intrusive smart pointer to an immutable message. Copies share the object
/// (fan-out sends one allocation to every receiver); the last reference
/// recycles the storage into the type's pool.
class MessageRef {
 public:
  constexpr MessageRef() = default;
  constexpr MessageRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  MessageRef(const MessageRef& other) : ptr_(other.ptr_) {
    if (ptr_ != nullptr) ptr_->retain();
  }
  MessageRef(MessageRef&& other) noexcept : ptr_(other.ptr_) {
    other.ptr_ = nullptr;
  }
  MessageRef& operator=(const MessageRef& other) {
    if (this != &other) {
      release();
      ptr_ = other.ptr_;
      if (ptr_ != nullptr) ptr_->retain();
    }
    return *this;
  }
  MessageRef& operator=(MessageRef&& other) noexcept {
    if (this != &other) {
      release();
      ptr_ = other.ptr_;
      other.ptr_ = nullptr;
    }
    return *this;
  }
  ~MessageRef() { release(); }

  [[nodiscard]] const Message* get() const { return ptr_; }
  [[nodiscard]] const Message& operator*() const { return *ptr_; }
  [[nodiscard]] const Message* operator->() const { return ptr_; }
  [[nodiscard]] explicit operator bool() const { return ptr_ != nullptr; }

  friend bool operator==(const MessageRef& ref, std::nullptr_t) {
    return ref.ptr_ == nullptr;
  }
  friend bool operator!=(const MessageRef& ref, std::nullptr_t) {
    return ref.ptr_ != nullptr;
  }

  /// Hands this reference's ownership to the caller as a raw pointer (for
  /// typed event payloads, which cannot hold smart pointers). Pair with
  /// attach().
  [[nodiscard]] const Message* detach() {
    const Message* raw = ptr_;
    ptr_ = nullptr;
    return raw;
  }

  /// Resumes ownership of a reference previously detach()ed.
  [[nodiscard]] static MessageRef attach(const Message* raw) {
    MessageRef ref;
    ref.ptr_ = raw;
    return ref;
  }

 private:
  template <typename T>
  friend class MessagePool;

  void release() {
    if (ptr_ != nullptr && ptr_->release_ref()) {
      if (ptr_->recycler_ != nullptr) {
        ptr_->recycler_(ptr_);
      } else {
        delete ptr_;
      }
    }
    ptr_ = nullptr;
  }

  const Message* ptr_ = nullptr;
};

using MessagePtr = MessageRef;

/// DeliverEvent::drop_token helper: releases the message reference carried
/// in a typed delivery's opaque token. A plain function so it stays callable
/// after the Network/Transport sink is gone (teardown with events pending).
inline void release_message_token(void* token) {
  static_cast<void>(
      MessageRef::attach(static_cast<const Message*>(token)));
}

/// Traffic classes for bandwidth accounting (Fig 10–12 split management
/// overhead from payload dissemination).
enum class TrafficClass : std::uint8_t {
  kMembership,  ///< PSS maintenance: joins, shuffles, keep-alives
  kControl,     ///< dissemination-structure control: (de)activations, pulls
  kData,        ///< stream payload messages
};

inline constexpr std::size_t kTrafficClassCount = 3;

}  // namespace brisa::net
