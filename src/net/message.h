// Wire messages.
//
// Protocols exchange typed message objects; the simulator only needs their
// size (for NIC serialization and bandwidth accounting) and their kind (for
// demultiplexing inside a node's protocol stack). Payload bytes are never
// materialized — the paper's payloads are opaque random bit strings, so only
// their length matters.
#pragma once

#include <cstdint>
#include <memory>

namespace brisa::net {

/// Every distinct protocol message in the system. Grouped by subsystem so a
/// stack can route on ranges if it ever needs to.
enum class MessageKind : std::uint16_t {
  // Transport-internal (handshake); never surfaced to handlers.
  kSyn,
  kSynAck,
  kFin,

  // HyParView (§II-A)
  kHpvJoin,
  kHpvForwardJoin,
  kHpvNeighbor,
  kHpvNeighborReply,
  kHpvDisconnect,
  kHpvShuffle,
  kHpvShuffleReply,
  kHpvKeepAlive,
  kHpvKeepAliveReply,

  // Cyclon
  kCyclonShuffle,
  kCyclonShuffleReply,

  // BRISA (§II-C to §II-G)
  kBrisaData,
  kBrisaDeactivate,
  kBrisaResume,          ///< "re-activate your outbound link to me"
  kBrisaResumeAck,       ///< carries the responder's position metadata
  kBrisaReactivateOrder, ///< hard repair: flows down the broken subtree
  kBrisaRetransmitRequest,

  // SimpleGossip baseline
  kGossipRumor,
  kGossipAntiEntropyRequest,
  kGossipAntiEntropyReply,

  // SimpleTree baseline
  kTreeJoinRequest,
  kTreeJoinReply,
  kTreeAttach,
  kTreeData,

  // TAG baseline
  kTagTailQuery,
  kTagTailReply,
  kTagAppendRequest,
  kTagAppendReply,
  kTagListProbe,
  kTagListProbeReply,
  kTagListUpdate,
  kTagPullRequest,
  kTagPullReply,

  // Tests / examples
  kTestPing,
  kTestPayload,
};

/// Fixed per-message framing overhead charged on the wire (Ethernet + IP +
/// TCP headers, amortized). Keeping it explicit makes bandwidth numbers
/// comparable with the paper's KB/s measurements.
inline constexpr std::size_t kFrameOverheadBytes = 66;

class Message {
 public:
  virtual ~Message() = default;

  [[nodiscard]] virtual MessageKind kind() const = 0;

  /// Bytes of protocol content (headers + metadata + payload), excluding
  /// kFrameOverheadBytes which the network adds once per message.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Traffic classes for bandwidth accounting (Fig 10–12 split management
/// overhead from payload dissemination).
enum class TrafficClass : std::uint8_t {
  kMembership,  ///< PSS maintenance: joins, shuffles, keep-alives
  kControl,     ///< dissemination-structure control: (de)activations, pulls
  kData,        ///< stream payload messages
};

inline constexpr std::size_t kTrafficClassCount = 3;

}  // namespace brisa::net
