// Bandwidth-discipline knobs: bounded message stores, Bloom digests for
// gossip/repair metadata, and sender-side adaptive rate control.
//
// One `Limits` value travels from the `[limits]` scenario section through
// every system Config into the protocol nodes and the Network. Like
// net::FaultPlan, a default-constructed Limits is the OFF state: stores stay
// unbounded, digests stay exact seq lists, the rate controller never defers —
// and every output is byte-identical to a build without this layer.
//
// References: Chen & Choi (buffer occupancy vs delivery reliability phase
// structure for epidemic routing) for the store bounds; Marandi et al.
// (Bloom-filter epidemic forwarding) for the digest compression; the goog_cc
// delay-based estimator for the BandwidthUsage tri-state.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace brisa::net {

/// What to evict when a bounded store is full.
enum class EvictionPolicy : std::uint8_t {
  /// Lowest-sequence entry goes first (FIFO in sequence space).
  kOldestFirst,
  /// Prefer entries below the delivery watermark (already contiguous at this
  /// node; still useful to serve others, but re-fetchable). When everything
  /// buffered is still above the watermark, drop the newest instead
  /// (drop-tail) — the oldest still-undelivered seqs are the ones a lagging
  /// peer asks for first.
  kDeliveredFirst,
};

/// Sender-side congestion tri-state derived from local queue growth — the
/// goog_cc estimator shape. Overusing senders skip optional traffic
/// (anti-entropy rounds, pulls, gap probes) for one period.
enum class BandwidthUsage : std::uint8_t {
  kNormal,
  kUnderusing,
  kOverusing,
};

struct Limits {
  // --- Bounded per-node message stores (0 = unbounded) ---------------------
  /// Max entries kept per (node, stream) serving store.
  std::size_t store_entries = 0;
  /// Max payload bytes kept per (node, stream) serving store.
  std::size_t store_bytes = 0;
  EvictionPolicy eviction = EvictionPolicy::kOldestFirst;

  // --- Bloom digests for have-lists / repair advertisements ----------------
  /// When true, gossip anti-entropy requests and BRISA retransmit requests
  /// carry a Bloom filter over held-above-watermark seqs instead of an exact
  /// list. A false positive means one seq is wrongly skipped this round and
  /// recovered on a later round — tunable bandwidth/latency tradeoff.
  bool bloom_digests = false;
  /// Target false-positive rate for each digest.
  double bloom_fp = 0.01;

  // --- Adaptive rate control ----------------------------------------------
  /// When true, Network::tx_usage() classifies each sender's local NIC/CPU
  /// backlog and protocols defer optional traffic while kOverusing.
  bool rate_control = false;
  /// Backlog at or above this is kOverusing.
  sim::Duration overuse_threshold = sim::Duration::milliseconds(200);
  /// Backlog at or below this is kUnderusing.
  sim::Duration underuse_threshold = sim::Duration::milliseconds(20);
  /// AIMD recovery step period: after an overuse episode halves a sender's
  /// optional-traffic gain, each sustained-underuse stretch of this length
  /// ramps the gain back up by one additive step (Network::tx_defer).
  sim::Duration rate_recovery = sim::Duration::seconds(1);

  /// True when the store bound is active.
  [[nodiscard]] bool bounded() const {
    return store_entries > 0 || store_bytes > 0;
  }
  /// True when any sub-layer is on (used by zero-cost-when-off gates).
  [[nodiscard]] bool any() const {
    return bounded() || bloom_digests || rate_control;
  }

  bool operator==(const Limits&) const = default;
};

}  // namespace brisa::net
