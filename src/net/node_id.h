// Node identity.
//
// A NodeId is an opaque dense index into the network's host table. The paper
// identifies nodes by 48-bit ip:port pairs; kWireIdBytes reflects that cost
// wherever protocol messages embed identifiers (path embedding, view
// exchanges), independent of the in-memory representation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace brisa::net {

/// Size of one node identifier on the wire (ip:port, 48 bits — §II-D).
inline constexpr std::size_t kWireIdBytes = 6;

class NodeId {
 public:
  constexpr NodeId() = default;
  explicit constexpr NodeId(std::uint32_t index) : index_(index) {}

  [[nodiscard]] static constexpr NodeId invalid() { return NodeId(); }
  [[nodiscard]] constexpr bool valid() const {
    return index_ != std::numeric_limits<std::uint32_t>::max();
  }
  [[nodiscard]] constexpr std::uint32_t index() const { return index_; }

  constexpr auto operator<=>(const NodeId&) const = default;

 private:
  std::uint32_t index_ = std::numeric_limits<std::uint32_t>::max();
};

inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  if (!id.valid()) return os << "n<invalid>";
  return os << "n" << id.index();
}

}  // namespace brisa::net

template <>
struct std::hash<brisa::net::NodeId> {
  std::size_t operator()(brisa::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.index());
  }
};
