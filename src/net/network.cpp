#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/logging.h"

namespace brisa::net {

Network::Config Network::cluster_config() {
  Config config;
  config.upload_Bps = 125e6;  // 1 Gbps
  config.rx_process_mean = sim::Duration::microseconds(30);
  config.rx_process_per_kb = sim::Duration::microseconds(50);
  config.rx_process_sigma = 0.2;
  config.failure_detect_base = sim::Duration::milliseconds(150);
  config.failure_detect_jitter = sim::Duration::milliseconds(75);
  return config;
}

Network::Config Network::planetlab_config() {
  Config config;
  // PlanetLab slivers see a small share of a 100 Mbps uplink.
  config.upload_Bps = 2.5e6;  // 20 Mbps
  // Resource-starved nodes: the paper's prototype runs on Splay/Lua on
  // heavily shared machines, so parsing a payload costs milliseconds per
  // KB while small control messages stay cheap. Duplicate-heavy flooding
  // therefore queues visibly at the slower nodes (Fig 9's "heavy load"),
  // without drowning keep-alives.
  config.rx_process_mean = sim::Duration::milliseconds(1);
  config.rx_process_per_kb = sim::Duration::milliseconds(15);
  config.rx_process_sigma = 0.8;
  config.failure_detect_base = sim::Duration::milliseconds(400);
  config.failure_detect_jitter = sim::Duration::milliseconds(250);
  return config;
}

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency)
    : Network(simulator, std::move(latency), Config{}) {}

Network::Network(sim::Simulator& simulator,
                 std::unique_ptr<LatencyModel> latency, Config config)
    : simulator_(simulator),
      latency_(std::move(latency)),
      config_(config),
      rng_(simulator.rng().split(0x4e7f00d)),
      host_key_base_(rng_.split(0x4057).next_u64()) {
  BRISA_ASSERT(latency_ != nullptr);
  BRISA_ASSERT(config_.upload_Bps > 0);
  if (simulator_.shards() > 1) {
    // Fan-out messages will be referenced from several shard threads.
    Message::enable_concurrent_refs();
  }
}

NodeId Network::add_host() {
  BRISA_ASSERT_MSG(!simulator_.in_parallel_phase(),
                   "add_host from a host-lane event");
  Host h;
  // A host created mid-run starts with idle NIC/CPU *now*, not at origin.
  h.nic_free_at = simulator_.now();
  h.cpu_free_at = simulator_.now();
  if (config_.rx_process_sigma > 0.0) {
    h.cpu_cost_factor = rng_.lognormal(0.0, config_.rx_process_sigma);
  }
  const auto index = static_cast<std::uint32_t>(hosts_.size());
  h.rng = sim::CounterRng::keyed(host_key_base_, index);
  if (fault_plan_ != nullptr) {
    h.fault_rng = sim::CounterRng::keyed(fault_key_base_, index);
  }
  hosts_.push_back(std::move(h));
  simulator_.register_host_lanes(static_cast<std::uint32_t>(hosts_.size()));
  ++alive_count_;
  alive_cache_valid_ = false;
  if (fault_plan_ != nullptr) {
    fault_flags_.push_back(compute_fault_flags(index));
  }
  const NodeId node(index);
  for (DeathListener* listener : death_listeners_) {
    listener->on_host_added(node);
  }
  return node;
}

void Network::kill(NodeId node) {
  BRISA_ASSERT_MSG(!simulator_.in_parallel_phase(),
                   "kill from a host-lane event");
  Host& h = host(node);
  if (!h.alive) return;
  h.alive = false;
  alive_cache_valid_ = false;
  if (h.is_suspended) {
    h.is_suspended = false;
    --suspended_count_;
  }
  --alive_count_;
  BRISA_DEBUG("net") << node << " killed";
  for (DeathListener* listener : death_listeners_) {
    listener->on_host_killed(node);
  }
}

void Network::suspend(NodeId node) {
  BRISA_ASSERT_MSG(!simulator_.in_parallel_phase(),
                   "suspend from a host-lane event");
  Host& h = host(node);
  if (!h.alive || h.is_suspended) return;
  h.is_suspended = true;
  ++suspended_count_;
  ++suspends_;
  BRISA_DEBUG("net") << node << " suspended";
  for (DeathListener* listener : death_listeners_) {
    listener->on_host_suspended(node);
  }
}

void Network::resume(NodeId node) {
  BRISA_ASSERT_MSG(!simulator_.in_parallel_phase(),
                   "resume from a host-lane event");
  Host& h = host(node);
  if (!h.alive || !h.is_suspended) return;
  h.is_suspended = false;
  --suspended_count_;
  ++resumes_;
  BRISA_DEBUG("net") << node << " resumed";
  for (DeathListener* listener : death_listeners_) {
    listener->on_host_resumed(node);
  }
}

bool Network::suspended(NodeId node) const {
  if (!node.valid() || node.index() >= hosts_.size()) return false;
  return hosts_[node.index()].is_suspended;
}

bool Network::responsive(NodeId node) const {
  if (!node.valid() || node.index() >= hosts_.size()) return false;
  const Host& h = hosts_[node.index()];
  return h.alive && !h.is_suspended;
}

bool Network::alive(NodeId node) const {
  if (!node.valid() || node.index() >= hosts_.size()) return false;
  return hosts_[node.index()].alive;
}

void Network::install_fault_plan(const FaultPlan* plan) {
  BRISA_ASSERT_MSG(!simulator_.in_parallel_phase(),
                   "install_fault_plan from a host-lane event");
  fault_plan_ = plan;
  if (plan != nullptr) {
    // Key every host's fault stream only now: runs without a plan never
    // consume this draw, so they reproduce pre-fault-layer behavior.
    fault_key_base_ = rng_.split(0xFA017).next_u64();
    for (std::uint32_t i = 0; i < hosts_.size(); ++i) {
      hosts_[i].fault_rng = sim::CounterRng::keyed(fault_key_base_, i);
    }
  }
  rebuild_fault_flags();
}

std::uint8_t Network::compute_fault_flags(std::uint32_t index) const {
  const NodeId node(index);
  std::uint8_t flags = 0;
  for (const PartitionRule& rule : fault_plan_->partitions()) {
    if (rule.a.contains(node) || rule.b.contains(node)) {
      flags |= kFaultPartition;
      break;
    }
  }
  for (const LossRule& rule : fault_plan_->losses()) {
    if (rule.a.contains(node) || rule.b.contains(node)) {
      flags |= kFaultLoss;
      break;
    }
  }
  for (const SlowRule& rule : fault_plan_->slows()) {
    if (rule.a.contains(node) || rule.b.contains(node)) {
      flags |= kFaultSlow;
      break;
    }
  }
  return flags;
}

void Network::rebuild_fault_flags() {
  if (fault_plan_ == nullptr) {
    fault_flags_.clear();
    return;
  }
  fault_flags_.resize(hosts_.size());
  for (std::uint32_t i = 0; i < fault_flags_.size(); ++i) {
    fault_flags_[i] = compute_fault_flags(i);
  }
}

LinkVerdict Network::fault_verdict(NodeId from, NodeId to) {
  if (fault_plan_ == nullptr) return LinkVerdict::kDeliver;
  // A rule matches a link only when both endpoints sit in its (symmetric)
  // group pair, so a link where neither endpoint carries a partition/loss
  // bit cannot be hit — skip the scan. Matching is time-window-agnostic
  // here (conservative): windows are still checked by link_verdict.
  const std::uint8_t flags =
      fault_flags_[from.index()] & fault_flags_[to.index()];
  if ((flags & (kFaultPartition | kFaultLoss)) == 0) {
    return LinkVerdict::kDeliver;
  }
  // Loss dice roll on the *sender's* stream: the verdict is computed from
  // the sender's lane, and per-host streams keep the draw partition-free.
  return fault_plan_->link_verdict(simulator_.now(), from, to,
                                   hosts_[from.index()].fault_rng);
}

sim::Duration Network::fault_adjust(NodeId from, NodeId to,
                                    sim::Duration flight) const {
  if (fault_plan_ == nullptr) return flight;
  if ((fault_flags_[from.index()] & fault_flags_[to.index()] & kFaultSlow) ==
      0) {
    return flight;
  }
  const double factor =
      fault_plan_->latency_factor(simulator_.now(), from, to);
  if (factor == 1.0) return flight;
  return sim::Duration::microseconds(
      static_cast<std::int64_t>(static_cast<double>(flight.us()) * factor));
}

void Network::note_fault(NodeId at, TrafficClass traffic_class,
                         LinkVerdict verdict, bool datagram) {
  const auto tc = static_cast<std::size_t>(traffic_class);
  Host& h = host(at);
  if (verdict == LinkVerdict::kDrop) {
    h.stats.dropped_messages[tc] += 1;
    ++(datagram ? h.faults.datagrams_dropped : h.faults.segments_dropped);
  } else if (verdict == LinkVerdict::kBlackhole) {
    h.stats.blackholed_messages[tc] += 1;
    ++(datagram ? h.faults.datagrams_blackholed
                : h.faults.segments_blackholed);
  }
}

Network::FaultTotals Network::fault_totals() const {
  FaultTotals totals;
  for (const Host& h : hosts_) {
    totals.datagrams_dropped += h.faults.datagrams_dropped;
    totals.datagrams_blackholed += h.faults.datagrams_blackholed;
    totals.segments_dropped += h.faults.segments_dropped;
    totals.segments_blackholed += h.faults.segments_blackholed;
    totals.retransmissions += h.faults.retransmissions;
    totals.rx_suppressed += h.faults.rx_suppressed;
  }
  totals.suspends = suspends_;
  totals.resumes = resumes_;
  return totals;
}

const std::vector<NodeId>& Network::alive_hosts() const {
  if (!alive_cache_valid_) {
    alive_cache_.clear();
    alive_cache_.reserve(alive_count_);
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      if (hosts_[i].alive) {
        alive_cache_.emplace_back(static_cast<std::uint32_t>(i));
      }
    }
    alive_cache_valid_ = true;
  }
  return alive_cache_;
}

void Network::bind_datagram_handler(NodeId node, DatagramHandler* handler) {
  host(node).datagram_handler = handler;
}

void Network::send_datagram(NodeId from, NodeId to, MessagePtr message,
                            TrafficClass traffic_class) {
  BRISA_ASSERT(message != nullptr);
  if (!from.valid() || from.index() >= hosts_.size()) return;
  if (!hosts_[from.index()].alive) return;
  if (suspended_count_ > 0 && hosts_[from.index()].is_suspended) [[unlikely]] {
    // Frozen host: timer-driven sends go nowhere, without NIC charge.
    note_fault(from, traffic_class, LinkVerdict::kBlackhole, /*datagram=*/true);
    return;
  }
  Host& sender = hosts_[from.index()];
  const std::size_t wire_bytes = message->wire_size();
  const sim::TimePoint serialized =
      nic_send_host(sender, wire_bytes, traffic_class);
  sim::Duration flight = latency_->sample(from, to, sender.rng);
  if (fault_plan_ != nullptr) [[unlikely]] {
    // The packet left the sender (NIC charged above); loss happens in the
    // network.
    const LinkVerdict verdict = fault_verdict(from, to);
    if (verdict != LinkVerdict::kDeliver) {
      note_fault(from, traffic_class, verdict, /*datagram=*/true);
      return;
    }
    flight = fault_adjust(from, to, flight);
  }
  // Cross-host flight may never undercut the conservative window length
  // (the latency models guarantee min_flight() >= lookahead; this floor is
  // applied identically for every shard count, including 1, where it is a
  // no-op because lookahead is also set there).
  if (from != to && flight < simulator_.lookahead()) [[unlikely]] {
    flight = simulator_.lookahead();
  }
  const sim::TimePoint arrival = serialized + flight;
  sim::DeliverEvent event;
  event.sink = this;
  event.token = const_cast<void*>(static_cast<const void*>(message.detach()));
  event.drop_token = &release_message_token;
  event.from = from.index();
  event.to = to.index();
  event.bytes = static_cast<std::uint32_t>(wire_bytes);
  event.tag = kDatagramArrival;
  event.tclass = static_cast<std::uint16_t>(traffic_class);
  simulator_.at_deliver(arrival, event);
}

void Network::on_deliver(const sim::DeliverEvent& event) {
  MessagePtr message =
      MessageRef::attach(static_cast<const Message*>(event.token));
  const NodeId from(event.from);
  if (event.to >= hosts_.size()) return;
  Host& h = hosts_[event.to];
  if (!h.alive) return;
  if (h.is_suspended) [[unlikely]] {
    ++h.faults.rx_suppressed;
    return;
  }
  if (h.datagram_handler == nullptr) return;
  if (event.tag == kDatagramArrival) {
    charge_receive_host(h, event.bytes,
                        static_cast<TrafficClass>(event.tclass));
    const sim::TimePoint ready =
        cpu_deliver_host(h, simulator_.now(), event.bytes);
    if (ready == simulator_.now()) {
      h.datagram_handler->on_datagram(from, std::move(message));
    } else {
      sim::DeliverEvent next = event;
      next.tag = kDatagramCpuReady;
      next.token = const_cast<void*>(
          static_cast<const void*>(message.detach()));
      simulator_.at_deliver(ready, next);
    }
    return;
  }
  h.datagram_handler->on_datagram(from, std::move(message));
}


sim::TimePoint Network::nic_send(NodeId from, std::size_t wire_bytes,
                                 TrafficClass traffic_class) {
  return nic_send_host(host(from), wire_bytes, traffic_class);
}

sim::TimePoint Network::nic_send_host(Host& h, std::size_t wire_bytes,
                                      TrafficClass traffic_class) {
  BRISA_ASSERT_MSG(h.alive, "dead host attempted to send");
  const std::size_t total_bytes = wire_bytes + kFrameOverheadBytes;
  const auto serialize_us = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(total_bytes) * 1e6 / config_.upload_Bps));
  const sim::TimePoint start =
      std::max(simulator_.now(), h.nic_free_at);
  const sim::TimePoint done =
      start + sim::Duration::microseconds(serialize_us);
  h.nic_free_at = done;
  const sim::Duration backlog = done - simulator_.now();
  if (backlog > h.peak_nic_backlog) h.peak_nic_backlog = backlog;
  const auto tc = static_cast<std::size_t>(traffic_class);
  h.stats.up_bytes[tc] += total_bytes;
  h.stats.up_messages[tc] += 1;
  ++h.messages_sent;
  return done;
}

void Network::charge_receive(NodeId to, std::size_t wire_bytes,
                             TrafficClass traffic_class) {
  charge_receive_host(host(to), wire_bytes, traffic_class);
}

void Network::charge_receive_host(Host& h, std::size_t wire_bytes,
                                  TrafficClass traffic_class) {
  const auto tc = static_cast<std::size_t>(traffic_class);
  h.stats.down_bytes[tc] += wire_bytes + kFrameOverheadBytes;
  h.stats.down_messages[tc] += 1;
}

sim::TimePoint Network::cpu_deliver(NodeId to, sim::TimePoint arrival,
                                    std::size_t wire_bytes) {
  return cpu_deliver_host(host(to), arrival, wire_bytes);
}

sim::TimePoint Network::cpu_deliver_host(Host& h, sim::TimePoint arrival,
                                         std::size_t wire_bytes) {
  if (config_.rx_process_mean == sim::Duration::zero() &&
      config_.rx_process_per_kb == sim::Duration::zero()) {
    return arrival;
  }
  const double size_us = static_cast<double>(config_.rx_process_per_kb.us()) *
                         static_cast<double>(wire_bytes) / 1024.0;
  const double mean_us =
      (static_cast<double>(config_.rx_process_mean.us()) + size_us) *
      h.cpu_cost_factor;
  // Receiver-stream draw: processing cost is rolled on the receiving
  // host's lane.
  const auto cost = sim::Duration::microseconds(
      static_cast<std::int64_t>(h.rng.exponential(mean_us)) + 1);
  const sim::TimePoint start = std::max(arrival, h.cpu_free_at);
  const sim::TimePoint done = start + cost;
  h.cpu_free_at = done;
  const sim::Duration backlog = done - arrival;
  if (backlog > h.peak_cpu_backlog) h.peak_cpu_backlog = backlog;
  return done;
}

BandwidthUsage Network::tx_usage(NodeId node) const {
  if (!config_.limits.rate_control) return BandwidthUsage::kNormal;
  const Host& h = host(node);
  const sim::TimePoint now = simulator_.now();
  sim::Duration backlog = sim::Duration::zero();
  if (h.nic_free_at > now) backlog = h.nic_free_at - now;
  if (h.cpu_free_at > now && h.cpu_free_at - now > backlog) {
    backlog = h.cpu_free_at - now;
  }
  if (backlog >= config_.limits.overuse_threshold) {
    return BandwidthUsage::kOverusing;
  }
  if (backlog <= config_.limits.underuse_threshold) {
    return BandwidthUsage::kUnderusing;
  }
  return BandwidthUsage::kNormal;
}

namespace {
// tx_defer gain scale: Q8 fixed point. Full rate, multiplicative-decrease
// floor (1/16 of full), and the additive recovery step (+1/4 per sustained
// underuse period — full recovery from the floor takes four quiet periods).
constexpr std::uint32_t kAimdFull = 256;
constexpr std::uint32_t kAimdFloor = 16;
constexpr std::uint32_t kAimdStep = 64;
}  // namespace

bool Network::tx_defer(NodeId node) {
  if (!config_.limits.rate_control) return false;
  const BandwidthUsage usage = tx_usage(node);
  Host& h = host(node);
  if (usage == BandwidthUsage::kOverusing) {
    // Multiplicative decrease: halve the optional-traffic rate, drop any
    // accumulated credit, and defer unconditionally while backlogged.
    h.aimd_gain = std::max(kAimdFloor, h.aimd_gain / 2);
    h.aimd_credit = 0;
    h.aimd_underuse_since = sim::TimePoint::max();
    return true;
  }
  if (usage == BandwidthUsage::kUnderusing) {
    const sim::TimePoint now = simulator_.now();
    if (h.aimd_underuse_since == sim::TimePoint::max()) {
      h.aimd_underuse_since = now;
    } else if (now - h.aimd_underuse_since >= config_.limits.rate_recovery) {
      // Additive increase: one step per sustained quiet period.
      h.aimd_gain = std::min(kAimdFull, h.aimd_gain + kAimdStep);
      h.aimd_underuse_since = now;
    }
  } else {
    // kNormal breaks the sustained-underuse streak without penalizing.
    h.aimd_underuse_since = sim::TimePoint::max();
  }
  if (h.aimd_gain == kAimdFull) return false;  // fully recovered: never defer
  // Token bucket in Q8: pass a gain/256 fraction of optional rounds.
  h.aimd_credit += h.aimd_gain;
  if (h.aimd_credit >= kAimdFull) {
    h.aimd_credit -= kAimdFull;
    return false;
  }
  return true;
}

sim::Duration Network::sample_flight(NodeId from, NodeId to) {
  sim::Duration flight = latency_->sample(from, to, host(from).rng);
  if (fault_plan_ != nullptr) [[unlikely]] {
    flight = fault_adjust(from, to, flight);
  }
  if (from != to && flight < simulator_.lookahead()) [[unlikely]] {
    flight = simulator_.lookahead();
  }
  return flight;
}

sim::Duration Network::sample_failure_detect_delay(NodeId at) {
  const double jitter_us = host(at).rng.exponential(
      static_cast<double>(config_.failure_detect_jitter.us()));
  return config_.failure_detect_base +
         sim::Duration::microseconds(static_cast<std::int64_t>(jitter_us));
}

BandwidthStats& Network::stats(NodeId node) { return host(node).stats; }

const BandwidthStats& Network::stats(NodeId node) const {
  return host(node).stats;
}

void Network::reset_stats() {
  for (Host& h : hosts_) {
    h.stats.reset();
    h.peak_nic_backlog = sim::Duration::zero();
    h.peak_cpu_backlog = sim::Duration::zero();
  }
}

std::uint64_t Network::messages_sent() const {
  std::uint64_t total = 0;
  for (const Host& h : hosts_) total += h.messages_sent;
  return total;
}

sim::Duration Network::peak_nic_backlog() const {
  sim::Duration peak = sim::Duration::zero();
  for (const Host& h : hosts_) peak = std::max(peak, h.peak_nic_backlog);
  return peak;
}

sim::Duration Network::peak_cpu_backlog() const {
  sim::Duration peak = sim::Duration::zero();
  for (const Host& h : hosts_) peak = std::max(peak, h.peak_cpu_backlog);
  return peak;
}

Network::Host& Network::host(NodeId node) {
  BRISA_ASSERT_MSG(node.valid() && node.index() < hosts_.size(),
                   "unknown host");
  return hosts_[node.index()];
}

const Network::Host& Network::host(NodeId node) const {
  BRISA_ASSERT_MSG(node.valid() && node.index() < hosts_.size(),
                   "unknown host");
  return hosts_[node.index()];
}

}  // namespace brisa::net
