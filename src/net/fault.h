// Deterministic fault injection: a seed-reproducible schedule of network
// fault directives, interpreted by Network (datagram path) and Transport
// (segment path, connection breakage).
//
// A FaultPlan is a passive rule table — it never schedules events itself.
// The Network consults it on every send while one is installed; with no plan
// installed the hot path pays exactly one null check. Directives:
//
//   * loss: per-link drop probability inside a time window, optionally
//     restricted to links between two node groups. Datagrams are dropped;
//     reliable transport masks the loss as retransmission delay (and pays
//     the retransmitted bytes), like TCP.
//   * partition: a bidirectional blackhole between two groups for a window.
//     Datagrams vanish; transport segments crossing the cut break their
//     connection (both ends see kPeerFailure after their failure-detection
//     delay, modeling RST / flow-control timeout).
//   * slow: multiplies sampled link latency inside a window (congestion or
//     rerouting spikes).
//   * crash: interpreted by the workload layer (workload::ChurnDriver picks
//     victims and calls Network::suspend/resume); carried here so one plan
//     describes the whole scenario.
//
// Windows are half-open [from, to): a directive applies at `from` and stops
// applying at `to`. Group matching is symmetric — rule (a, b) covers x->y
// when x∈a, y∈b or x∈b, y∈a — so partitions are bidirectional by
// construction.
//
// Determinism: loss decisions consume the Network's dedicated fault RNG
// stream in send order, which the simulator makes deterministic; identical
// seed + plan reproduces identical drops.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node_id.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace brisa::net {

/// Inclusive node-index interval; the default matches every node.
struct NodeGroup {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0xffffffff;

  [[nodiscard]] static constexpr NodeGroup all() { return NodeGroup{}; }
  [[nodiscard]] static constexpr NodeGroup single(std::uint32_t index) {
    return NodeGroup{index, index};
  }
  [[nodiscard]] static constexpr NodeGroup range(std::uint32_t lo,
                                                 std::uint32_t hi) {
    return NodeGroup{lo, hi};
  }

  [[nodiscard]] constexpr bool contains(NodeId node) const {
    return node.index() >= lo && node.index() <= hi;
  }
  [[nodiscard]] constexpr bool is_all() const {
    return lo == 0 && hi == 0xffffffff;
  }

  constexpr auto operator<=>(const NodeGroup&) const = default;
};

struct LossRule {
  sim::TimePoint from;
  sim::TimePoint to;
  double probability = 0.0;  ///< per-message drop probability in [0, 1]
  NodeGroup a = NodeGroup::all();
  NodeGroup b = NodeGroup::all();

  auto operator<=>(const LossRule&) const = default;
};

struct PartitionRule {
  sim::TimePoint from;
  sim::TimePoint to;
  NodeGroup a;
  NodeGroup b;

  auto operator<=>(const PartitionRule&) const = default;
};

struct SlowRule {
  sim::TimePoint from;
  sim::TimePoint to;
  double factor = 1.0;  ///< latency multiplier, >= 1
  NodeGroup a = NodeGroup::all();
  NodeGroup b = NodeGroup::all();

  auto operator<=>(const SlowRule&) const = default;
};

/// Fail-recover crash of `count` random alive nodes for `duration`. Not
/// interpreted by the Network (it has no victim-selection policy); the
/// workload driver schedules suspend/resume from it.
struct CrashRule {
  sim::TimePoint at;
  std::size_t count = 0;
  sim::Duration duration;

  auto operator<=>(const CrashRule&) const = default;
};

/// Duty-cycled availability for a node class: inside [from, to) each node in
/// `group` alternates `up` online and `down` offline (trace-style mobility /
/// sleep cycles). Like CrashRule, not interpreted by the Network — the
/// workload driver phase-staggers the nodes and schedules suspend/resume.
struct DutyRule {
  NodeGroup group;
  sim::TimePoint from;
  sim::TimePoint to;
  sim::Duration up;
  sim::Duration down;

  auto operator<=>(const DutyRule&) const = default;
};

/// What the fault layer says about one message crossing one link now.
enum class LinkVerdict : std::uint8_t {
  kDeliver,    ///< unaffected
  kDrop,       ///< probabilistic loss hit this message
  kBlackhole,  ///< link is partitioned: nothing crosses
};

class FaultPlan {
 public:
  void add_loss(LossRule rule);
  void add_partition(PartitionRule rule);
  void add_slow(SlowRule rule);
  void add_crash(CrashRule rule);
  void add_duty(DutyRule rule);

  [[nodiscard]] bool empty() const {
    return losses_.empty() && partitions_.empty() && slows_.empty() &&
           crashes_.empty() && duties_.empty();
  }

  /// True when a partition window covering `now` separates the two nodes.
  [[nodiscard]] bool partitioned(sim::TimePoint now, NodeId from,
                                 NodeId to) const;

  /// Rolls the loss dice for one message on `from`->`to`. Partition rules
  /// win over loss rules; overlapping loss rules each roll independently.
  /// Consumes `rng` only for loss rules active on this link right now.
  [[nodiscard]] LinkVerdict link_verdict(sim::TimePoint now, NodeId from,
                                         NodeId to, sim::CounterRng& rng) const;

  /// Product of every active slow rule's factor on this link (1.0 when none).
  [[nodiscard]] double latency_factor(sim::TimePoint now, NodeId from,
                                      NodeId to) const;

  /// Shifts every rule's times by `offset` (scripts are written relative to
  /// the experiment start; the driver rebases them onto the arm instant).
  [[nodiscard]] FaultPlan shifted(sim::Duration offset) const;

  [[nodiscard]] const std::vector<LossRule>& losses() const { return losses_; }
  [[nodiscard]] const std::vector<PartitionRule>& partitions() const {
    return partitions_;
  }
  [[nodiscard]] const std::vector<SlowRule>& slows() const { return slows_; }
  [[nodiscard]] const std::vector<CrashRule>& crashes() const {
    return crashes_;
  }
  [[nodiscard]] const std::vector<DutyRule>& duties() const {
    return duties_;
  }

  bool operator==(const FaultPlan&) const = default;

 private:
  static bool matches(const NodeGroup& a, const NodeGroup& b, NodeId from,
                      NodeId to);
  static bool active(sim::TimePoint from, sim::TimePoint to,
                     sim::TimePoint now);

  std::vector<LossRule> losses_;
  std::vector<PartitionRule> partitions_;
  std::vector<SlowRule> slows_;
  std::vector<CrashRule> crashes_;
  std::vector<DutyRule> duties_;
};

}  // namespace brisa::net
