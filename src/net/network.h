// The simulated network: host table, NIC serialization, receive-side CPU
// queue, unreliable datagrams, and per-host bandwidth accounting.
//
// Two resources are modeled per host, because both matter for the paper's
// results:
//   * the NIC: outbound messages serialize FIFO at `upload_Bps`
//     (Figs 10-12: bandwidth usage; flood vs tree load);
//   * the CPU: inbound messages queue for a per-message processing cost
//     (Fig 9: on PlanetLab, duplicate-heavy flooding inflates delays because
//     resource-starved nodes pay for every reception).
// Receive-side link contention is intentionally not modeled; at the paper's
// rates the NIC and CPU are the binding resources.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/latency.h"
#include "net/message.h"
#include "net/node_id.h"
#include "sim/simulator.h"

namespace brisa::net {

struct BandwidthStats {
  std::array<std::uint64_t, kTrafficClassCount> up_bytes{};
  std::array<std::uint64_t, kTrafficClassCount> down_bytes{};
  std::array<std::uint64_t, kTrafficClassCount> up_messages{};
  std::array<std::uint64_t, kTrafficClassCount> down_messages{};

  [[nodiscard]] std::uint64_t total_up_bytes() const {
    std::uint64_t total = 0;
    for (auto b : up_bytes) total += b;
    return total;
  }
  [[nodiscard]] std::uint64_t total_down_bytes() const {
    std::uint64_t total = 0;
    for (auto b : down_bytes) total += b;
    return total;
  }
  void reset() { *this = BandwidthStats{}; }
};

/// The simulated network. Datagram deliveries are typed DeliverEvents (no
/// closure, no allocation on the steady-state path); the Network is the sink
/// that interprets them at arrival and CPU-ready time.
class Network : public sim::DeliverEvent::Sink {
 public:
  struct Config {
    /// NIC throughput. Default: 1 Gbps full duplex (the paper's cluster).
    double upload_Bps = 125e6;
    /// Mean per-message receive processing cost (fixed part); 0 with
    /// rx_process_per_kb == 0 disables CPU modeling.
    sim::Duration rx_process_mean = sim::Duration::zero();
    /// Additional processing cost per KB of message body — large payloads
    /// cost proportionally more to parse/copy (dominant on PlanetLab).
    sim::Duration rx_process_per_kb = sim::Duration::zero();
    /// Per-host CPU speed heterogeneity: each host's processing cost is
    /// multiplied by lognormal(0, rx_process_sigma). 0 = homogeneous.
    double rx_process_sigma = 0.0;
    /// Transport-level failure detection (TCP reset / flow-control timeout):
    /// peers of a dead node learn of broken connections after
    /// `failure_detect_base` + Exp(`failure_detect_jitter`).
    sim::Duration failure_detect_base = sim::Duration::milliseconds(200);
    sim::Duration failure_detect_jitter = sim::Duration::milliseconds(100);
  };

  /// Presets matching the two testbeds of §III.
  [[nodiscard]] static Config cluster_config();
  [[nodiscard]] static Config planetlab_config();

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency);
  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
          Config config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- Host lifecycle -----------------------------------------------------

  /// Adds a host, alive immediately.
  NodeId add_host();

  /// Crash-stop failure: the host stops sending/receiving instantly; peers
  /// learn through transport failure detection.
  void kill(NodeId node);

  [[nodiscard]] bool alive(NodeId node) const;
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }
  [[nodiscard]] std::vector<NodeId> alive_hosts() const;

  class DeathListener {
   public:
    virtual ~DeathListener() = default;
    virtual void on_host_killed(NodeId node) = 0;
  };
  void add_death_listener(DeathListener* listener) {
    death_listeners_.push_back(listener);
  }

  // --- Datagrams ----------------------------------------------------------

  class DatagramHandler {
   public:
    virtual ~DatagramHandler() = default;
    virtual void on_datagram(NodeId from, MessagePtr message) = 0;
  };

  void bind_datagram_handler(NodeId node, DatagramHandler* handler);

  /// Fire-and-forget send; silently dropped if the destination is dead at
  /// arrival (Cyclon-style protocols tolerate this by design).
  void send_datagram(NodeId from, NodeId to, MessagePtr message,
                     TrafficClass traffic_class);

  // --- Resource model (used by Transport and datagrams) -------------------

  /// Serializes `wire_bytes` (+frame overhead) at `from`'s NIC; charges
  /// upload accounting; returns the serialization-completion time.
  sim::TimePoint nic_send(NodeId from, std::size_t wire_bytes,
                          TrafficClass traffic_class);

  /// Charges download accounting at `to`.
  void charge_receive(NodeId to, std::size_t wire_bytes,
                      TrafficClass traffic_class);

  /// Queues inbound processing at `to`'s CPU starting no earlier than
  /// `arrival`; returns the instant the protocol handler should run.
  sim::TimePoint cpu_deliver(NodeId to, sim::TimePoint arrival,
                             std::size_t wire_bytes);

  /// Sampled delay until a peer notices this host's death (transport level).
  sim::Duration sample_failure_detect_delay();

  // --- Accessors ----------------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] LatencyModel& latency() { return *latency_; }
  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] BandwidthStats& stats(NodeId node);
  [[nodiscard]] const BandwidthStats& stats(NodeId node) const;
  /// Zeroes all per-host counters (phase boundaries in Fig 12).
  void reset_stats();

  /// Messages that finished NIC serialization, network-wide (tests).
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  /// Delivery stages encoded in DeliverEvent::tag.
  enum DatagramStage : std::uint16_t {
    kDatagramArrival = 0,   ///< left the wire; charge receive, queue CPU
    kDatagramCpuReady = 1,  ///< processing done; hand to the protocol
  };

  // sim::DeliverEvent::Sink
  void on_deliver(const sim::DeliverEvent& event) override;

  struct Host {
    bool alive = true;
    sim::TimePoint nic_free_at = sim::TimePoint::origin();
    sim::TimePoint cpu_free_at = sim::TimePoint::origin();
    double cpu_cost_factor = 1.0;
    DatagramHandler* datagram_handler = nullptr;
    BandwidthStats stats;
  };

  Host& host(NodeId node);
  const Host& host(NodeId node) const;

  sim::Simulator& simulator_;
  std::unique_ptr<LatencyModel> latency_;
  Config config_;
  sim::Rng rng_;
  std::vector<Host> hosts_;
  std::size_t alive_count_ = 0;
  std::vector<DeathListener*> death_listeners_;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace brisa::net
