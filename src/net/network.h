// The simulated network: host table, NIC serialization, receive-side CPU
// queue, unreliable datagrams, and per-host bandwidth accounting.
//
// Two resources are modeled per host, because both matter for the paper's
// results:
//   * the NIC: outbound messages serialize FIFO at `upload_Bps`
//     (Figs 10-12: bandwidth usage; flood vs tree load);
//   * the CPU: inbound messages queue for a per-message processing cost
//     (Fig 9: on PlanetLab, duplicate-heavy flooding inflates delays because
//     resource-starved nodes pay for every reception).
// Receive-side link contention is intentionally not modeled; at the paper's
// rates the NIC and CPU are the binding resources.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/fault.h"
#include "net/latency.h"
#include "net/limits.h"
#include "net/message.h"
#include "net/node_id.h"
#include "sim/simulator.h"

namespace brisa::net {

struct BandwidthStats {
  std::array<std::uint64_t, kTrafficClassCount> up_bytes{};
  std::array<std::uint64_t, kTrafficClassCount> down_bytes{};
  std::array<std::uint64_t, kTrafficClassCount> up_messages{};
  std::array<std::uint64_t, kTrafficClassCount> down_messages{};
  /// Outbound messages eaten by the fault layer at this host: probabilistic
  /// loss (`dropped`) vs partition/crash suppression (`blackholed`).
  std::array<std::uint64_t, kTrafficClassCount> dropped_messages{};
  std::array<std::uint64_t, kTrafficClassCount> blackholed_messages{};

  [[nodiscard]] std::uint64_t total_up_bytes() const {
    std::uint64_t total = 0;
    for (auto b : up_bytes) total += b;
    return total;
  }
  [[nodiscard]] std::uint64_t total_down_bytes() const {
    std::uint64_t total = 0;
    for (auto b : down_bytes) total += b;
    return total;
  }
  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t total = 0;
    for (auto m : dropped_messages) total += m;
    return total;
  }
  [[nodiscard]] std::uint64_t total_blackholed() const {
    std::uint64_t total = 0;
    for (auto m : blackholed_messages) total += m;
    return total;
  }
  void reset() { *this = BandwidthStats{}; }

  bool operator==(const BandwidthStats&) const = default;
};

/// The simulated network. Datagram deliveries are typed DeliverEvents (no
/// closure, no allocation on the steady-state path); the Network is the sink
/// that interprets them at arrival and CPU-ready time.
class Network : public sim::DeliverEvent::Sink {
 public:
  struct Config {
    /// NIC throughput. Default: 1 Gbps full duplex (the paper's cluster).
    double upload_Bps = 125e6;
    /// Mean per-message receive processing cost (fixed part); 0 with
    /// rx_process_per_kb == 0 disables CPU modeling.
    sim::Duration rx_process_mean = sim::Duration::zero();
    /// Additional processing cost per KB of message body — large payloads
    /// cost proportionally more to parse/copy (dominant on PlanetLab).
    sim::Duration rx_process_per_kb = sim::Duration::zero();
    /// Per-host CPU speed heterogeneity: each host's processing cost is
    /// multiplied by lognormal(0, rx_process_sigma). 0 = homogeneous.
    double rx_process_sigma = 0.0;
    /// Transport-level failure detection (TCP reset / flow-control timeout):
    /// peers of a dead node learn of broken connections after
    /// `failure_detect_base` + Exp(`failure_detect_jitter`).
    sim::Duration failure_detect_base = sim::Duration::milliseconds(200);
    sim::Duration failure_detect_jitter = sim::Duration::milliseconds(100);
    /// Transport retransmission timeout: each loss-rule hit on a reliable
    /// segment delays it by one RTO (and re-charges the sender's NIC).
    sim::Duration retransmit_timeout = sim::Duration::milliseconds(200);
    /// Bandwidth-discipline knobs ([limits] scenario section). The Network
    /// consults only the rate-control fields; defaults keep tx_usage() at
    /// kNormal unconditionally.
    Limits limits;
  };

  /// Presets matching the two testbeds of §III.
  [[nodiscard]] static Config cluster_config();
  [[nodiscard]] static Config planetlab_config();

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency);
  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> latency,
          Config config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- Host lifecycle -----------------------------------------------------

  /// Adds a host, alive immediately.
  NodeId add_host();

  /// Crash-stop failure: the host stops sending/receiving instantly; peers
  /// learn through transport failure detection.
  void kill(NodeId node);

  /// Fail-recover crash: the host freezes — it neither sends nor receives —
  /// but keeps its protocol state and identity; resume() brings it back.
  /// Distinct from kill(): a suspended host stays alive() (its timers keep
  /// firing into a blocked network, like a machine with its NIC down) but is
  /// not responsive(). No-op on dead or already-suspended hosts.
  void suspend(NodeId node);
  void resume(NodeId node);
  [[nodiscard]] bool suspended(NodeId node) const;
  /// alive and not suspended: can currently send and receive.
  [[nodiscard]] bool responsive(NodeId node) const;

  [[nodiscard]] bool alive(NodeId node) const;
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }
  /// Ids of the alive hosts, ascending. The vector is cached and only
  /// rebuilt after a membership change (add_host/kill), so the churn layer
  /// can poll it every tick without a fresh allocation per call. The
  /// reference is invalidated by the next membership change.
  [[nodiscard]] const std::vector<NodeId>& alive_hosts() const;

  class DeathListener {
   public:
    virtual ~DeathListener() = default;
    virtual void on_host_killed(NodeId node) = 0;
    /// Fail-recover events from the fault layer; default no-ops keep
    /// kill-only listeners unchanged.
    virtual void on_host_suspended(NodeId /*node*/) {}
    virtual void on_host_resumed(NodeId /*node*/) {}
    /// A host joined the network (always from a serial phase). Layers that
    /// keep per-host tables (Transport) presize them here, so host-lane
    /// events never grow shared containers.
    virtual void on_host_added(NodeId /*node*/) {}
  };
  void add_death_listener(DeathListener* listener) {
    death_listeners_.push_back(listener);
  }

  // --- Fault injection ------------------------------------------------------

  /// Installs a fault plan (non-owning; nullptr uninstalls). While installed,
  /// every datagram and transport segment consults it; without one the send
  /// path pays a single null check. Installing seeds the dedicated fault RNG
  /// stream, so un-faulted runs reproduce pre-fault-layer behavior exactly.
  void install_fault_plan(const FaultPlan* plan);
  [[nodiscard]] const FaultPlan* fault_plan() const { return fault_plan_; }

  /// Fault decision for one message crossing `from`->`to` now (kDeliver when
  /// no plan is installed). Consumes the fault RNG for active loss rules.
  /// Links touching no rule's node groups short-circuit through the dense
  /// per-host relevance flags built at install time — at sweep scale most
  /// traffic never scans the rule table.
  [[nodiscard]] LinkVerdict fault_verdict(NodeId from, NodeId to);

  /// Applies active slow rules to a sampled flight latency.
  [[nodiscard]] sim::Duration fault_adjust(NodeId from, NodeId to,
                                           sim::Duration flight) const;

  /// Accounting for a message the fault layer ate at `at` (sender side).
  /// `datagram` splits the network-wide totals by path.
  void note_fault(NodeId at, TrafficClass traffic_class, LinkVerdict verdict,
                  bool datagram);

  /// Network-wide fault counters (tests, analysis reports). Link-level
  /// fields are kept per host (they are bumped from host-lane events, which
  /// run in parallel under sharding) and aggregated here on read; suspends/
  /// resumes are serial-phase-only and stay global.
  struct FaultTotals {
    std::uint64_t datagrams_dropped = 0;
    std::uint64_t datagrams_blackholed = 0;
    std::uint64_t segments_dropped = 0;  ///< masked as retransmission delay
    std::uint64_t segments_blackholed = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t rx_suppressed = 0;  ///< arrivals at suspended hosts
    std::uint64_t suspends = 0;
    std::uint64_t resumes = 0;

    bool operator==(const FaultTotals&) const = default;
  };
  /// Aggregated by value — O(hosts), report/test cadence only.
  [[nodiscard]] FaultTotals fault_totals() const;
  void note_retransmission(NodeId at) { ++host(at).faults.retransmissions; }
  void note_rx_suppressed(NodeId at) { ++host(at).faults.rx_suppressed; }

  // --- Datagrams ----------------------------------------------------------

  class DatagramHandler {
   public:
    virtual ~DatagramHandler() = default;
    virtual void on_datagram(NodeId from, MessagePtr message) = 0;
  };

  void bind_datagram_handler(NodeId node, DatagramHandler* handler);

  /// Fire-and-forget send; silently dropped if the destination is dead at
  /// arrival (Cyclon-style protocols tolerate this by design).
  void send_datagram(NodeId from, NodeId to, MessagePtr message,
                     TrafficClass traffic_class);

  // --- Resource model (used by Transport and datagrams) -------------------

  /// Serializes `wire_bytes` (+frame overhead) at `from`'s NIC; charges
  /// upload accounting; returns the serialization-completion time.
  sim::TimePoint nic_send(NodeId from, std::size_t wire_bytes,
                          TrafficClass traffic_class);

  /// Charges download accounting at `to`.
  void charge_receive(NodeId to, std::size_t wire_bytes,
                      TrafficClass traffic_class);

  /// Queues inbound processing at `to`'s CPU starting no earlier than
  /// `arrival`; returns the instant the protocol handler should run.
  sim::TimePoint cpu_deliver(NodeId to, sim::TimePoint arrival,
                             std::size_t wire_bytes);

  /// Sampled delay until a peer notices this host's death (transport level).
  /// Drawn from `at`'s stream: the draw happens on that host's lane.
  sim::Duration sample_failure_detect_delay(NodeId at);

  /// One-way flight latency `from` -> `to`: latency-model sample (drawn from
  /// the sender's stream), slow-rule adjustment, and the same cross-host
  /// lookahead floor as send_datagram. Used by the transport for reliable
  /// segments.
  [[nodiscard]] sim::Duration sample_flight(NodeId from, NodeId to);

  // --- Adaptive rate control (sender-side congestion signal) ---------------

  /// Classifies `node`'s own send-side pressure from its NIC + CPU backlog
  /// (free_at minus now) against the configured thresholds — the goog_cc
  /// BandwidthUsage shape. Always kNormal when limits.rate_control is off.
  [[nodiscard]] BandwidthUsage tx_usage(NodeId node) const;

  /// AIMD gate for optional traffic (anti-entropy rounds, pulls, gap
  /// probes): true = defer this round. Overuse halves the sender's
  /// optional-traffic gain (floor 16/256) and always defers; once the
  /// backlog clears, a matching fraction of rounds keeps being deferred
  /// until sustained underuse ramps the gain back up by one additive step
  /// per limits.rate_recovery period. At full gain — and always when rate
  /// control is off — it is a single branch returning false, so protocol
  /// timers can gate on it unconditionally without perturbing outputs.
  /// Mutates only the caller host's state, so it stays shard-safe.
  [[nodiscard]] bool tx_defer(NodeId node);

  /// Current AIMD gain for `node` in Q8 fixed point (256 = full rate);
  /// instrumentation for tests and reports.
  [[nodiscard]] std::uint32_t tx_rate_gain(NodeId node) const {
    return host(node).aimd_gain;
  }

  /// Peak backlog instrumentation (always tracked; it only feeds reports):
  /// the largest NIC serialization queue and receive-CPU queue observed at
  /// any host since construction / the last reset_stats(). Tracked per host
  /// (the hot paths run on host lanes) and max-reduced on read.
  [[nodiscard]] sim::Duration peak_nic_backlog() const;
  [[nodiscard]] sim::Duration peak_cpu_backlog() const;

  // --- Accessors ----------------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] LatencyModel& latency() { return *latency_; }
  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] BandwidthStats& stats(NodeId node);
  [[nodiscard]] const BandwidthStats& stats(NodeId node) const;
  /// Zeroes all per-host counters (phase boundaries in Fig 12).
  void reset_stats();

  /// Messages that finished NIC serialization, network-wide (tests).
  /// Summed over the per-host counters; unlike stats(), not cleared by
  /// reset_stats().
  [[nodiscard]] std::uint64_t messages_sent() const;

 private:
  /// Delivery stages encoded in DeliverEvent::tag.
  enum DatagramStage : std::uint16_t {
    kDatagramArrival = 0,   ///< left the wire; charge receive, queue CPU
    kDatagramCpuReady = 1,  ///< processing done; hand to the protocol
  };

  // sim::DeliverEvent::Sink
  void on_deliver(const sim::DeliverEvent& event) override;

  /// Per-host state. Everything mutated on the steady-state send/receive
  /// paths lives here, because those paths execute on the host's lane —
  /// possibly in parallel with other hosts' lanes under sharded execution.
  /// Membership flags (alive/is_suspended) are written only from serial
  /// phases and merely read from host lanes.
  struct Host {
    bool alive = true;
    bool is_suspended = false;
    sim::TimePoint nic_free_at = sim::TimePoint::origin();
    sim::TimePoint cpu_free_at = sim::TimePoint::origin();
    double cpu_cost_factor = 1.0;
    DatagramHandler* datagram_handler = nullptr;
    /// Lane-local draw stream (latency jitter as sender, rx cost as
    /// receiver, failure-detect jitter): a pure function of (key, #draws
    /// this host made), so partition-independent.
    sim::CounterRng rng;
    /// Lane-local fault dice (loss rules roll on the sender's lane).
    /// Keyed only while a fault plan is installed.
    sim::CounterRng fault_rng;
    BandwidthStats stats;
    /// This host's share of the link-level FaultTotals fields.
    FaultTotals faults;
    std::uint64_t messages_sent = 0;
    sim::Duration peak_nic_backlog = sim::Duration::zero();
    sim::Duration peak_cpu_backlog = sim::Duration::zero();
    /// AIMD optional-traffic gate (tx_defer): Q8 send gain (256 = full
    /// rate), token-bucket credit, and the start of the current sustained
    /// -underuse streak (TimePoint::max() = no streak in progress).
    std::uint32_t aimd_gain = 256;
    std::uint32_t aimd_credit = 0;
    sim::TimePoint aimd_underuse_since = sim::TimePoint::max();
  };

  Host& host(NodeId node);
  const Host& host(NodeId node) const;

  /// Hot-path variants of the resource model taking an already-resolved
  /// Host&: send/deliver does one bounds-checked table lookup, not four.
  sim::TimePoint nic_send_host(Host& h, std::size_t wire_bytes,
                               TrafficClass traffic_class);
  void charge_receive_host(Host& h, std::size_t wire_bytes,
                           TrafficClass traffic_class);
  sim::TimePoint cpu_deliver_host(Host& h, sim::TimePoint arrival,
                                  std::size_t wire_bytes);

  /// Which fault-rule node groups mention a host: or-ed kFault* bits. A link
  /// whose endpoints carry no bits cannot match any rule, so the hot path
  /// skips the rule scan (and, for loss rules, provably consumes no RNG —
  /// non-matching rules never rolled the dice either).
  enum FaultFlag : std::uint8_t {
    kFaultPartition = 1,
    kFaultLoss = 2,
    kFaultSlow = 4,
  };
  [[nodiscard]] std::uint8_t compute_fault_flags(std::uint32_t index) const;
  void rebuild_fault_flags();

  sim::Simulator& simulator_;
  std::unique_ptr<LatencyModel> latency_;
  Config config_;
  /// Setup-only stream (cpu cost factors, key derivation). Never drawn from
  /// a host lane — hot-path draws use the per-host CounterRng streams.
  sim::Rng rng_;
  /// Base key of the per-host draw streams, derived once at construction.
  std::uint64_t host_key_base_ = 0;
  /// Base key of the per-host fault streams; drawn at install_fault_plan
  /// time so runs without a plan reproduce pre-fault-layer behavior.
  std::uint64_t fault_key_base_ = 0;
  const FaultPlan* fault_plan_ = nullptr;
  std::vector<Host> hosts_;
  /// Indexed by host; rebuilt at install_fault_plan, extended by add_host.
  std::vector<std::uint8_t> fault_flags_;
  std::size_t alive_count_ = 0;
  std::size_t suspended_count_ = 0;
  /// Serial-phase fault-plan lifecycle counts (see FaultTotals).
  std::uint64_t suspends_ = 0;
  std::uint64_t resumes_ = 0;
  std::vector<DeathListener*> death_listeners_;
  /// alive_hosts() cache; invalidated by add_host/kill.
  mutable std::vector<NodeId> alive_cache_;
  mutable bool alive_cache_valid_ = false;
};

}  // namespace brisa::net
