// Point-to-point latency models.
//
// Substitutes for the paper's two testbeds (§III): a 1 Gbps switched cluster
// and a PlanetLab slice. Latencies are a deterministic function of the node
// pair (plus per-message jitter drawn from the caller's RNG stream), so the
// same seed always produces the same network.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "net/node_id.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace brisa::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way latency for a message from `from` to `to`, including jitter.
  /// Draws jitter from the caller's stream — under sharded execution this is
  /// the *sending host's* CounterRng, so draws are lane-local.
  [[nodiscard]] virtual sim::Duration sample(NodeId from, NodeId to,
                                             sim::CounterRng& rng) = 0;

  /// The stable (jitter-free) component, used by tests and by the
  /// point-to-point reference series in Fig 9.
  [[nodiscard]] virtual sim::Duration base(NodeId from, NodeId to) const = 0;

  /// A guaranteed lower bound on sample(from, to, ...) over all *distinct*
  /// host pairs: the conservative lookahead of the sharded event loop
  /// (Network clamps cross-host flight times up to it, and the window
  /// length derives from it). Self-delivery may be faster — it never
  /// crosses a shard.
  [[nodiscard]] virtual sim::Duration min_flight() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Switched-LAN model: uniform sub-millisecond base latency plus small
/// exponential jitter. Matches the paper's 15-machine 1 Gbps cluster.
class ClusterLatencyModel final : public LatencyModel {
 public:
  struct Config {
    sim::Duration base_latency = sim::Duration::microseconds(150);
    double jitter_mean_us = 30.0;
  };

  ClusterLatencyModel() : ClusterLatencyModel(Config{}) {}
  explicit ClusterLatencyModel(Config config) : config_(config) {}

  [[nodiscard]] sim::Duration sample(NodeId from, NodeId to,
                                     sim::CounterRng& rng) override;
  [[nodiscard]] sim::Duration base(NodeId from, NodeId to) const override;
  [[nodiscard]] sim::Duration min_flight() const override {
    return config_.base_latency;
  }
  [[nodiscard]] const char* name() const override { return "cluster"; }

 private:
  Config config_;
};

/// Wide-area model: each node gets a position on a 2-D "Internet plane" plus
/// a heavy-tailed per-node access penalty (log-normal). One-way latency =
/// propagation (distance) + both endpoints' access penalties + jitter.
/// Reproduces PlanetLab's key traits: large spread (a few ms to hundreds of
/// ms), consistent per-pair values, and a heavy tail of slow nodes.
class PlanetLabLatencyModel final : public LatencyModel {
 public:
  struct Config {
    /// Plane half-width in "milliseconds of propagation". Kept moderate:
    /// real PlanetLab latency is dominated by per-node access/slivering
    /// penalties rather than geography, which is what makes the delay-aware
    /// strategy effective (it routes around slow *nodes*, not distances).
    double plane_ms = 60.0;
    /// Log-normal parameters of the per-node access penalty (ms).
    double access_mu = 3.0;     // median e^3 ≈ 20 ms
    double access_sigma = 1.0;  // heavy tail: p90 ≈ 72 ms, p99 ≈ 206 ms
    /// Per-message jitter: exponential with this mean (ms).
    double jitter_mean_ms = 2.0;
    /// Seed for the deterministic node-placement stream.
    std::uint64_t placement_seed = 0x91ab5eedULL;
  };

  PlanetLabLatencyModel() : PlanetLabLatencyModel(Config{}) {}
  explicit PlanetLabLatencyModel(Config config) : config_(config) {}

  [[nodiscard]] sim::Duration sample(NodeId from, NodeId to,
                                     sim::CounterRng& rng) override;
  [[nodiscard]] sim::Duration base(NodeId from, NodeId to) const override;
  /// base() keeps a 0.5 ms propagation floor for distinct pairs and access
  /// penalties are strictly positive, so 500 µs is a true lower bound.
  [[nodiscard]] sim::Duration min_flight() const override {
    return sim::Duration::microseconds(500);
  }
  [[nodiscard]] const char* name() const override { return "planetlab"; }

 private:
  struct Placement {
    double x_ms;
    double y_ms;
    double access_ms;
  };
  [[nodiscard]] Placement placement(NodeId node) const;

  Config config_;
};

/// Clustered WAN: nodes are hashed into K clusters (think regional data
/// centers or ISP clusters); intra-cluster links pay a small LAN-class RTT
/// while inter-cluster links pay a per-cluster-pair WAN latency drawn
/// deterministically from [inter_min_ms, inter_max_ms]. Neither paper
/// testbed has this two-tier shape — it opens geo-replication workloads
/// (cf. D'Angelo & Ferretti's parameterized complex-network topologies).
class ClusteredWanLatencyModel final : public LatencyModel {
 public:
  struct Config {
    std::size_t clusters = 8;
    /// One-way latency between two nodes of the same cluster (ms).
    double intra_ms = 1.0;
    /// One-way inter-cluster latency range; each ordered cluster pair gets
    /// a deterministic value in [inter_min_ms, inter_max_ms] (symmetric).
    double inter_min_ms = 20.0;
    double inter_max_ms = 160.0;
    /// Per-message exponential jitter mean (ms).
    double jitter_mean_ms = 1.0;
    /// Seed of the deterministic cluster-assignment / pair-latency stream.
    std::uint64_t placement_seed = 0xc105ceedULL;
  };

  ClusteredWanLatencyModel() : ClusteredWanLatencyModel(Config{}) {}
  explicit ClusteredWanLatencyModel(Config config) : config_(config) {}

  [[nodiscard]] sim::Duration sample(NodeId from, NodeId to,
                                     sim::CounterRng& rng) override;
  [[nodiscard]] sim::Duration base(NodeId from, NodeId to) const override;
  [[nodiscard]] sim::Duration min_flight() const override {
    const double ms = std::min(config_.intra_ms, config_.inter_min_ms);
    return sim::Duration::microseconds(static_cast<std::int64_t>(ms * 1e3));
  }
  [[nodiscard]] const char* name() const override { return "clustered-wan"; }

  /// Deterministic cluster of a node (tests, analysis grouping).
  [[nodiscard]] std::size_t cluster_of(NodeId node) const;

 private:
  Config config_;
};

/// Datacenter fat-tree approximation: hosts fill racks, racks fill pods.
/// Latency is a function of the hop tier alone — same rack (one ToR hop),
/// same pod (through aggregation), or cross-pod (through the core) — which
/// is the uniform three-level distance structure of a folded-Clos fabric.
/// Oversubscription is not modeled; the NIC serialization in net::Network
/// remains the bandwidth bottleneck.
class FatTreeLatencyModel final : public LatencyModel {
 public:
  struct Config {
    std::size_t hosts_per_rack = 40;
    std::size_t racks_per_pod = 16;
    /// One-way latency per tier (µs).
    double intra_rack_us = 30.0;
    double intra_pod_us = 120.0;
    double inter_pod_us = 300.0;
    /// Per-message exponential jitter mean (µs).
    double jitter_mean_us = 10.0;
  };

  FatTreeLatencyModel() : FatTreeLatencyModel(Config{}) {}
  explicit FatTreeLatencyModel(Config config) : config_(config) {}

  [[nodiscard]] sim::Duration sample(NodeId from, NodeId to,
                                     sim::CounterRng& rng) override;
  [[nodiscard]] sim::Duration base(NodeId from, NodeId to) const override;
  [[nodiscard]] sim::Duration min_flight() const override {
    const double us = std::min({config_.intra_rack_us, config_.intra_pod_us,
                                config_.inter_pod_us});
    return sim::Duration::microseconds(static_cast<std::int64_t>(us));
  }
  [[nodiscard]] const char* name() const override { return "fat-tree"; }

 private:
  Config config_;
};

/// Factory helpers used by scenario configuration.
std::unique_ptr<LatencyModel> make_cluster_latency();
std::unique_ptr<LatencyModel> make_planetlab_latency();
std::unique_ptr<LatencyModel> make_clustered_wan_latency(
    ClusteredWanLatencyModel::Config config = {});
std::unique_ptr<LatencyModel> make_fat_tree_latency(
    FatTreeLatencyModel::Config config = {});

}  // namespace brisa::net
