// Recycling message arena.
//
// Experiments allocate millions of short-lived message objects; the
// allocator round-trip per message is pure overhead on the hot send path.
// MessagePool keeps a per-type free list of raw storage blocks: make_message
// placement-constructs into a recycled block (or a fresh one on pool miss),
// and when the last MessageRef drops, the object is destroyed and its block
// pushed back onto the list. Pools are thread_local so independent
// experiment runs on different threads never contend.
//
// Pool capacity is bounded by the peak number of in-flight messages of each
// type, not by message churn.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "net/message.h"

namespace brisa::net {

/// Allocation counters (thread-wide, across all message types).
struct MessagePoolStats {
  std::uint64_t allocated = 0;  ///< fresh blocks from the heap (pool misses)
  std::uint64_t reused = 0;     ///< blocks served from a free list
  std::uint64_t recycled = 0;   ///< blocks returned to a free list

  [[nodiscard]] std::uint64_t messages_created() const {
    return allocated + reused;
  }
  void reset() { *this = MessagePoolStats{}; }
};

[[nodiscard]] inline MessagePoolStats& message_pool_stats() {
  static thread_local MessagePoolStats stats;
  return stats;
}

template <typename T>
class MessagePool {
  static_assert(std::is_base_of_v<Message, T>,
                "MessagePool manages Message subclasses");

 public:
  template <typename... Args>
  [[nodiscard]] static MessagePtr make(Args&&... args) {
    auto& free_blocks = free_list();
    void* block;
    if (!free_blocks.empty()) {
      block = free_blocks.back();
      free_blocks.pop_back();
      ++message_pool_stats().reused;
    } else {
      block = ::operator new(sizeof(T), std::align_val_t{alignof(T)});
      ++message_pool_stats().allocated;
    }
    T* object = new (block) T(std::forward<Args>(args)...);
    const Message* base = object;
    // Freshly constructed object: not yet visible to any other thread, so a
    // relaxed store is enough even in concurrent-refs mode.
    base->refs_.store(1, std::memory_order_relaxed);
    base->recycler_ = &recycle;
    MessageRef ref;
    ref.ptr_ = base;
    return ref;
  }

  /// Blocks currently parked in this type's free list (tests).
  [[nodiscard]] static std::size_t free_count() { return free_list().size(); }

 private:
  static void recycle(const Message* message) {
    // The recycler is installed only on T objects, so the downcast is exact.
    const T* object = static_cast<const T*>(message);
    object->~T();
    free_list().push_back(
        const_cast<void*>(static_cast<const void*>(object)));
    ++message_pool_stats().recycled;
  }

  static std::vector<void*>& free_list() {
    static thread_local FreeList list;
    return list.blocks;
  }

  struct FreeList {
    std::vector<void*> blocks;
    ~FreeList() {
      for (void* block : blocks) {
        ::operator delete(block, std::align_val_t{alignof(T)});
      }
    }
  };
};

/// Pooled replacement for std::make_shared<T>(...): constructs a message in
/// recycled storage and returns a shared reference to it.
template <typename T, typename... Args>
[[nodiscard]] MessagePtr make_message(Args&&... args) {
  return MessagePool<T>::make(std::forward<Args>(args)...);
}

}  // namespace brisa::net
