// Connection-oriented reliable transport (the simulator's TCP stand-in).
//
// Provides what HyParView and the dissemination protocols need from TCP
// (§II-A): connection establishment, reliable in-order delivery per
// connection, graceful close, and eventual notification when the remote end
// dies (modeling RST / flow-control timeouts via the network's
// failure-detection delay).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "net/node_id.h"
#include "util/small_vec.h"

namespace brisa::net {

/// Generation-tagged handle into the transport's connection slab: the low 32
/// bits hold slot+1 (so 0 stays the invalid id), the high 32 the slot's
/// generation at allocation. Stale ids (connection since erased, slot since
/// reused) fail the generation check and resolve to "unknown connection" —
/// exactly the semantics handlers already rely on for late failure notices.
using ConnectionId = std::uint64_t;
inline constexpr ConnectionId kInvalidConnectionId = 0;

enum class CloseReason : std::uint8_t {
  kLocalClose,   ///< we called close()
  kRemoteClose,  ///< peer closed gracefully (FIN)
  kPeerFailure,  ///< peer crashed; detected by the transport
  kRefused,      ///< connect() to a dead/unreachable node
};

[[nodiscard]] const char* to_string(CloseReason reason);

class TransportHandler {
 public:
  virtual ~TransportHandler() = default;

  /// Connection is usable. `initiated` tells which side called connect().
  virtual void on_connection_up(ConnectionId conn, NodeId peer,
                                bool initiated) = 0;
  virtual void on_connection_down(ConnectionId conn, NodeId peer,
                                  CloseReason reason) = 0;
  virtual void on_message(ConnectionId conn, NodeId from,
                          MessagePtr message) = 0;
};

class Transport final : public Network::DeathListener,
                        public sim::DeliverEvent::Sink {
 public:
  explicit Transport(Network& network);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Registers the (single) handler for a host's inbound transport events.
  void bind(NodeId node, TransportHandler* handler);

  /// Begins connection establishment; the result arrives asynchronously as
  /// on_connection_up (both ends) or on_connection_down(kRefused) (initiator).
  ConnectionId connect(NodeId from, NodeId to);

  /// Graceful close by `closer`. The peer sees kRemoteClose after one-way
  /// latency. No callback fires at the closer (it already knows).
  void close(ConnectionId conn, NodeId closer);

  /// Reliable in-order send. Returns false if the connection is not
  /// established or `sender` is not one of its live endpoints.
  bool send(ConnectionId conn, NodeId sender, MessagePtr message,
            TrafficClass traffic_class);

  [[nodiscard]] bool established(ConnectionId conn) const;
  [[nodiscard]] NodeId peer_of(ConnectionId conn, NodeId self) const;

  /// Number of non-closed connections (tests / leak checks).
  [[nodiscard]] std::size_t open_connections() const;

  /// Severs a connection whose link the fault layer blackholed (partition,
  /// frozen peer, or sustained loss): both endpoints see kPeerFailure after
  /// their own failure-detection delay, modeling RST / flow-control timeout.
  void break_connection(ConnectionId conn);

  /// Contract note for handlers: a failure/refusal notice may arrive for a
  /// connection the handler already closed or replaced locally (the record
  /// can be gone before the detection delay elapses, so the notice cannot
  /// be cancelled). Handlers must treat unknown/stale ids in
  /// on_connection_down as a no-op, as HyParView does.

  // Network::DeathListener
  void on_host_killed(NodeId node) override;
  void on_host_suspended(NodeId node) override;
  void on_host_resumed(NodeId node) override;

 private:
  enum class State : std::uint8_t { kConnecting, kEstablished, kClosed };

  /// Delivery stages encoded in DeliverEvent::tag.
  enum SegmentStage : std::uint16_t {
    kSegmentArrival = 0,   ///< left the wire; charge receive, queue CPU
    kSegmentCpuReady = 1,  ///< processing done; hand to the handler
  };

  // sim::DeliverEvent::Sink (data segments on established connections)
  void on_deliver(const sim::DeliverEvent& event) override;

  struct Connection {
    NodeId initiator;
    NodeId acceptor;
    State state = State::kConnecting;
    /// Enforces FIFO delivery per direction despite latency jitter.
    sim::TimePoint last_delivery_to_initiator = sim::TimePoint::origin();
    sim::TimePoint last_delivery_to_acceptor = sim::TimePoint::origin();
  };

  /// One reusable slab slot. `open` distinguishes a live record from a freed
  /// slot whose generation already advanced (handles to it are stale).
  struct ConnSlot {
    Connection conn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = 0xffffffff;
    bool open = false;
  };

  /// Shared teardown behind break_connection and the lost-FIN close path:
  /// marks the record closed, schedules kPeerFailure at the selected
  /// endpoints, and defers the erase until the notices and every in-flight
  /// arrival have drained.
  void sever(ConnectionId conn, bool notify_initiator, bool notify_acceptor);

  void mark_closed(ConnectionId conn);
  Connection* find(ConnectionId conn);
  const Connection* find(ConnectionId conn) const;
  TransportHandler* handler_of(NodeId node);

  /// Slab plumbing: allocate_connection hands out a fresh (slot, generation)
  /// id; erase_connection retires the record and bumps the generation so
  /// every outstanding handle goes stale atomically.
  ConnectionId allocate_connection();
  void erase_connection(ConnectionId conn);
  [[nodiscard]] static std::uint32_t slot_of(ConnectionId conn) {
    return static_cast<std::uint32_t>(conn & 0xffffffffULL) - 1;
  }
  [[nodiscard]] static std::uint32_t gen_of(ConnectionId conn) {
    return static_cast<std::uint32_t>(conn >> 32);
  }
  /// Per-host bookkeeping vectors are sized lazily (the transport does not
  /// know the final host count).
  void track(NodeId node, ConnectionId conn);
  void untrack(NodeId node, ConnectionId conn);

  /// Schedules on_connection_down(conn, peer, reason) at `endpoint` after its
  /// failure-detection delay, returned to the caller (zero when nothing was
  /// scheduled). Dead endpoints are skipped; suspended ones get the notice
  /// queued until resume (a frozen machine learns of its broken connections
  /// when it wakes).
  sim::Duration notify_endpoint_failure(ConnectionId conn, NodeId endpoint,
                                        NodeId peer, CloseReason reason);

  /// Resolves one fault verdict for a reliable segment: loss rules become
  /// retransmissions (NIC re-charged, arrival delayed one RTO each), and
  /// after kMaxConsecutiveLosses consecutive losses the path counts as dead.
  /// Returns the surviving verdict (kDeliver or kBlackhole) and adds the
  /// retransmission penalty to `*extra_delay`.
  LinkVerdict resolve_segment_verdict(NodeId sender, NodeId receiver,
                                      std::size_t wire_bytes,
                                      TrafficClass traffic_class,
                                      sim::Duration* extra_delay);

  /// Transmits one segment through the fault layer: charges the sender's
  /// NIC (including retransmissions) and returns the arrival instant, or
  /// nullopt when the segment was blackholed (counted at the sender; the
  /// caller decides how the connection reacts). Shared by SYN, SYN-ACK,
  /// FIN, and data sends.
  std::optional<sim::TimePoint> transmit_segment(NodeId sender,
                                                 NodeId receiver,
                                                 std::size_t wire_bytes,
                                                 TrafficClass traffic_class);

  /// Size of a handshake/teardown segment on the wire.
  static constexpr std::size_t kControlSegmentBytes = 8;
  /// TCP gives up after this many consecutive losses of one segment;
  /// sustained 100% loss therefore behaves like a partition.
  static constexpr std::uint32_t kMaxConsecutiveLosses = 6;

  struct PendingNotice {
    ConnectionId conn;
    NodeId peer;
    CloseReason reason;
  };

  void queue_resume_notice(NodeId node, PendingNotice notice);

  Network& network_;
  /// Connection records in a reusable slab; ConnectionId = {slot, gen}, so
  /// find() is one bounds check + one generation compare — no hashing on the
  /// send/deliver path.
  std::vector<ConnSlot> slots_;
  std::uint32_t free_head_ = 0xffffffff;
  /// Host-indexed flat tables (lazily sized to the largest bound host).
  std::vector<TransportHandler*> handlers_;
  std::vector<util::SmallVec<ConnectionId, 4>> by_host_;
  /// Connection failures a suspended host will learn about at resume.
  std::vector<std::vector<PendingNotice>> pending_resume_notices_;
};

}  // namespace brisa::net
