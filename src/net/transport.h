// Connection-oriented reliable transport (the simulator's TCP stand-in).
//
// Provides what HyParView and the dissemination protocols need from TCP
// (§II-A): connection establishment, reliable in-order delivery per
// connection, graceful close, and eventual notification when the remote end
// dies (modeling RST / flow-control timeouts via the network's
// failure-detection delay).
//
// State is partitioned as *half-connections*: each endpoint owns a Half
// record in its host's slab, mutated only from that host's lane (or from
// serial phases). A ConnectionId names the holder's own half, so handlers on
// the two ends of one connection hold *different* ids — each side only ever
// uses ids handed to it by its own callbacks, which protocols already do.
// Cross-endpoint effects (SYN/SYN-ACK/FIN arrivals, failure notices) travel
// as host-lane events delayed at least the simulator lookahead, which keeps
// the sharded event loop conservative and the results independent of the
// shard count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "net/node_id.h"

namespace brisa::net {

/// Generation-tagged handle to one *half* of a connection, packed as
/// (gen:20 | host:24 | slot+1:20). The low bits hold slot+1 so the encoding
/// of a real half is never 0. Stale ids (half since erased, slot since
/// reused) fail the generation check and resolve to "unknown connection" —
/// exactly the semantics handlers already rely on for late failure notices.
using ConnectionId = std::uint64_t;
inline constexpr ConnectionId kInvalidConnectionId = 0;

enum class CloseReason : std::uint8_t {
  kLocalClose,   ///< we called close()
  kRemoteClose,  ///< peer closed gracefully (FIN)
  kPeerFailure,  ///< peer crashed; detected by the transport
  kRefused,      ///< connect() to a dead/unreachable node
};

[[nodiscard]] const char* to_string(CloseReason reason);

class TransportHandler {
 public:
  virtual ~TransportHandler() = default;

  /// Connection is usable. `initiated` tells which side called connect().
  virtual void on_connection_up(ConnectionId conn, NodeId peer,
                                bool initiated) = 0;
  virtual void on_connection_down(ConnectionId conn, NodeId peer,
                                  CloseReason reason) = 0;
  virtual void on_message(ConnectionId conn, NodeId from,
                          MessagePtr message) = 0;
};

class Transport final : public Network::DeathListener,
                        public sim::DeliverEvent::Sink {
 public:
  explicit Transport(Network& network);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Registers the (single) handler for a host's inbound transport events.
  void bind(NodeId node, TransportHandler* handler);

  /// Begins connection establishment; the result arrives asynchronously as
  /// on_connection_up (both ends) or on_connection_down(kRefused) (initiator).
  /// The returned id names the initiator's half; the acceptor receives its
  /// own id in its on_connection_up.
  ConnectionId connect(NodeId from, NodeId to);

  /// Graceful close by the id's owner. The peer sees kRemoteClose after
  /// one-way latency. No callback fires at the closer (it already knows).
  void close(ConnectionId conn, NodeId closer);

  /// Reliable in-order send. Returns false if the connection is not
  /// established or `sender` does not own the half `conn` names.
  bool send(ConnectionId conn, NodeId sender, MessagePtr message,
            TrafficClass traffic_class);

  [[nodiscard]] bool established(ConnectionId conn) const;
  /// Remote endpoint of the half `conn` names; `self` must be its owner.
  [[nodiscard]] NodeId peer_of(ConnectionId conn, NodeId self) const;

  /// Number of non-closed connection halves (tests / leak checks). A fully
  /// established pair counts 2; the interesting invariant — every test uses
  /// it this way — is that a drained system reports 0.
  [[nodiscard]] std::size_t open_connections() const;

  /// Severs a connection whose link the fault layer blackholed (partition,
  /// frozen peer, or sustained loss): both endpoints see kPeerFailure after
  /// their own failure-detection delay, modeling RST / flow-control timeout.
  void break_connection(ConnectionId conn);

  /// Contract note for handlers: a failure/refusal notice may arrive for a
  /// connection the handler already closed or replaced locally (the record
  /// can be gone before the detection delay elapses, so the notice cannot
  /// be cancelled). Handlers must treat unknown/stale ids in
  /// on_connection_down as a no-op, as HyParView does.

  // Network::DeathListener (all invoked from serial phases)
  void on_host_killed(NodeId node) override;
  void on_host_suspended(NodeId node) override;
  void on_host_resumed(NodeId node) override;
  void on_host_added(NodeId node) override;

 private:
  enum class State : std::uint8_t { kSynSent, kEstablished, kClosed };

  /// Delivery stages encoded in DeliverEvent::tag.
  enum SegmentStage : std::uint16_t {
    kSegmentArrival = 0,   ///< left the wire; charge receive, queue CPU
    kSegmentCpuReady = 1,  ///< processing done; hand to the handler
  };

  // ConnectionId packing.
  static constexpr std::uint32_t kSlotBits = 20;
  static constexpr std::uint32_t kHostBits = 24;
  static constexpr std::uint32_t kGenBits = 20;
  static constexpr std::uint32_t kNil = 0xffffffff;
  [[nodiscard]] static std::uint32_t slot_of(ConnectionId conn) {
    return static_cast<std::uint32_t>(conn & ((1u << kSlotBits) - 1)) - 1;
  }
  [[nodiscard]] static std::uint32_t host_of(ConnectionId conn) {
    return static_cast<std::uint32_t>(conn >> kSlotBits) &
           ((1u << kHostBits) - 1);
  }
  [[nodiscard]] static std::uint32_t gen_of(ConnectionId conn) {
    return static_cast<std::uint32_t>(conn >> (kSlotBits + kHostBits));
  }
  [[nodiscard]] static ConnectionId pack_id(std::uint32_t host,
                                            std::uint32_t slot,
                                            std::uint32_t gen) {
    return (static_cast<ConnectionId>(gen) << (kSlotBits + kHostBits)) |
           (static_cast<ConnectionId>(host) << kSlotBits) |
           static_cast<ConnectionId>(slot + 1);
  }

  // sim::DeliverEvent::Sink (data segments; event.id = receiver's half)
  void on_deliver(const sim::DeliverEvent& event) override;

  /// One endpoint's record, owned by its host's lane. The FIFO clamp covers
  /// only the *outbound* direction — the inbound clamp lives in the peer's
  /// half — so no field is ever written from two lanes.
  struct Half {
    NodeId peer;
    /// The peer's half id; the acceptor learns it from the SYN, the
    /// initiator from the SYN-ACK.
    ConnectionId peer_half = kInvalidConnectionId;
    State state = State::kSynSent;
    bool initiated = false;
    /// Enforces FIFO delivery toward the peer despite latency jitter.
    sim::TimePoint last_tx_arrival = sim::TimePoint::origin();
  };

  struct HalfSlot {
    Half half;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNil;
    bool open = false;
  };

  struct PendingNotice {
    ConnectionId conn;
    NodeId peer;
    CloseReason reason;
  };

  /// Everything the transport keeps for one host; mutated only from that
  /// host's lane or from serial phases. Sized by on_host_added/bind, never
  /// from lane events.
  struct HostState {
    std::vector<HalfSlot> slots;
    std::uint32_t free_head = kNil;
    TransportHandler* handler = nullptr;
    /// Connection failures a suspended host will learn about at resume.
    std::vector<PendingNotice> resume_notices;
  };

  void ensure_host(std::uint32_t index);
  ConnectionId allocate_half(NodeId at);
  void erase_half(ConnectionId conn);
  Half* find(ConnectionId conn);
  const Half* find(ConnectionId conn) const;
  /// Linear scan of `at`'s slab for the half pointing back at `peer_half`
  /// (FIN resolution; slabs are per-host and protocol-degree sized).
  Half* find_by_peer_half(NodeId at, ConnectionId peer_half,
                          ConnectionId* id_out);
  TransportHandler* handler_of(NodeId node);

  // Handshake / teardown stages; each runs on the lane of its first arg.
  void handle_syn(ConnectionId initiator_half, NodeId from, NodeId to);
  void handle_syn_ack(ConnectionId initiator_half, ConnectionId acceptor_half,
                      NodeId from, NodeId to);
  void handle_fin(NodeId peer, NodeId closer, ConnectionId closer_half);
  void handle_remote_sever(NodeId target, ConnectionId target_half,
                           NodeId peer, CloseReason reason);

  /// Schedules on_connection_down(conn, peer, reason) at `at` on its own
  /// lane after its failure-detection delay, and erases the half (if still
  /// present) when the notice fires. Dead endpoints are skipped; suspended
  /// ones get the notice queued until resume.
  void schedule_failure_notice(NodeId at, ConnectionId conn, NodeId peer,
                               CloseReason reason);

  /// Schedules handle_remote_sever at `target`'s lane `delay` from now:
  /// lookahead when called from a lane event (cross-lane discipline), zero
  /// from serial phases.
  void schedule_remote_sever(NodeId target, ConnectionId target_half,
                             NodeId peer, CloseReason reason,
                             sim::Duration delay);

  void queue_resume_notice(NodeId node, PendingNotice notice);

  /// Resolves one fault verdict for a reliable segment: loss rules become
  /// retransmissions (NIC re-charged, arrival delayed one RTO each), and
  /// after kMaxConsecutiveLosses consecutive losses the path counts as dead.
  /// Returns the surviving verdict (kDeliver or kBlackhole) and adds the
  /// retransmission penalty to `*extra_delay`.
  LinkVerdict resolve_segment_verdict(NodeId sender, NodeId receiver,
                                      std::size_t wire_bytes,
                                      TrafficClass traffic_class,
                                      sim::Duration* extra_delay);

  /// Transmits one segment through the fault layer: charges the sender's
  /// NIC (including retransmissions) and returns the arrival instant, or
  /// nullopt when the segment was blackholed (counted at the sender; the
  /// caller decides how the connection reacts). Shared by SYN, SYN-ACK,
  /// FIN, and data sends. All draws come from the sender's streams.
  std::optional<sim::TimePoint> transmit_segment(NodeId sender,
                                                 NodeId receiver,
                                                 std::size_t wire_bytes,
                                                 TrafficClass traffic_class);

  /// Applies the per-direction FIFO clamp of `h` to a raw arrival instant.
  static sim::TimePoint clamp_fifo(Half& h, sim::TimePoint arrival) {
    if (arrival <= h.last_tx_arrival) {
      arrival = h.last_tx_arrival + sim::Duration::microseconds(1);
    }
    h.last_tx_arrival = arrival;
    return arrival;
  }

  /// Size of a handshake/teardown segment on the wire.
  static constexpr std::size_t kControlSegmentBytes = 8;
  /// TCP gives up after this many consecutive losses of one segment;
  /// sustained 100% loss therefore behaves like a partition.
  static constexpr std::uint32_t kMaxConsecutiveLosses = 6;

  Network& network_;
  std::vector<HostState> hosts_;
};

}  // namespace brisa::net
