// Multi-topic feed: K topics, each with its own publisher and its own
// emergent BRISA tree, multiplexed over one shared HyParView overlay —
// with a partial audience per topic.
//
//   $ ./multi_topic_feed [--nodes=96] [--streams=4] [--items=40]
//                        [--subscription-fraction=0.5]
//
// Demonstrates the pub/sub-shaped API:
//   1. a BrisaSystem configured with num_streams topics;
//   2. a PubSubDriver injecting every topic concurrently (distinct sources,
//      per-topic rates) with a deterministic subscriber set per topic;
//   3. per-topic + aggregate reporting via analysis::format_stream_table.
//
// Nodes outside a topic's subscriber set still forward it (the forest is
// shared infrastructure); the report only scores subscribers.
#include <cstdio>

#include "analysis/stream_report.h"
#include "bench/common.h"
#include "util/flags.h"
#include "workload/brisa_system.h"
#include "workload/pubsub.h"

using namespace brisa;

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.help_requested()) {
    std::printf(
        "multi_topic_feed [--nodes=96] [--streams=4] [--items=40]\n"
        "                 [--subscription-fraction=0.5]\n");
    return 0;
  }
  std::vector<std::string> known = bench::multi_stream_flag_names();
  known.insert(known.end(), {"nodes", "items"});
  if (!flags.validate(known,
                      "multi_topic_feed [--nodes=96] [--streams=4] "
                      "[--items=40]\n"
                      "                 [--subscription-fraction=0.5]\n")) {
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 96));
  const auto items = static_cast<std::size_t>(flags.get_int("items", 40));
  bench::MultiStreamOptions options = bench::parse_multi_stream_options(flags);
  if (!flags.has("streams")) options.streams = 4;
  if (!flags.has("subscription-fraction")) options.subscription_fraction = 0.5;

  std::printf("=== multi-topic feed: %zu nodes, %zu topics, %zu items each, "
              "%.0f%% subscribers per topic ===\n",
              nodes, options.streams, items,
              options.subscription_fraction * 100.0);

  workload::BrisaSystem::Config config;
  config.seed = 7;
  config.num_nodes = nodes;
  config.num_streams = options.streams;
  config.join_spread = sim::Duration::seconds(10);
  config.stabilization = sim::Duration::seconds(20);
  workload::BrisaSystem system(config);
  system.bootstrap();

  for (std::size_t s = 0; s < options.streams; ++s) {
    std::printf("topic %zu publishes from node %u\n", s,
                system.source_id(static_cast<net::StreamId>(s)).index());
  }

  // Topics run at slightly different rates — feeds are not phase-aligned.
  workload::PubSubDriver::Config pubsub;
  for (std::size_t s = 0; s < options.streams; ++s) {
    pubsub.streams.push_back({static_cast<net::StreamId>(s), items,
                              4.0 + 0.5 * static_cast<double>(s), 1024});
  }
  pubsub.subscription_fraction = options.subscription_fraction;
  workload::PubSubDriver driver(
      system.simulator(), pubsub,
      [&system](net::StreamId stream, std::size_t bytes) {
        return system.publish(stream, bytes);
      });
  driver.run(sim::Duration::seconds(15));

  const std::vector<analysis::StreamRow> rows =
      bench::collect_stream_rows(system, driver);
  std::printf("%s", analysis::format_stream_table(rows).c_str());

  // The forwarder role: nodes relaying a topic they do not subscribe to.
  std::size_t forwarder_roles = 0;
  for (const net::NodeId id : system.member_ids()) {
    for (std::size_t s = 0; s < options.streams; ++s) {
      const auto stream = static_cast<net::StreamId>(s);
      if (id == system.source_id(stream)) continue;  // roots are not forwarders
      if (driver.subscribed(stream, id)) continue;
      if (!system.brisa(id, stream).children().empty()) ++forwarder_roles;
    }
  }
  std::printf(
      "%zu (node, topic) forwarder roles: unsubscribed nodes carrying a "
      "topic's tree for its subscribers\n",
      forwarder_roles);

  const analysis::StreamRow all = analysis::aggregate_streams(rows);
  std::printf("aggregate reliability: %.2f%% over %zu subscriber slots\n",
              all.reliability * 100.0, all.subscribers);
  return all.reliability >= 0.999 ? 0 : 1;
}
