// Multi-source news feed (§IV "Multiple Trees and Multiple Parents"): several
// publishers each run their own BRISA stream over the *same* HyParView
// overlay — per-stream trees coexist because structure state is per-stream.
//
//   $ ./news_feed [--nodes=96] [--publishers=3] [--items=60]
//
// Demonstrates the multi-stream engine: one BrisaEngine per node multiplexes
// a forest of per-stream trees over one PSS; each stream prunes its own
// tree, so a node can be a leaf in one tree and interior in another
// (natural load spreading).
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "analysis/stats.h"
#include "core/brisa.h"
#include "membership/hyparview.h"
#include "util/flags.h"
#include "workload/testbed.h"

using namespace brisa;

namespace {

/// A node stack: one HyParView, one BrisaEngine carrying all streams.
struct FeedNode {
  std::unique_ptr<membership::HyParView> pss;
  std::unique_ptr<core::BrisaEngine> engine;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("news_feed [--nodes=96] [--publishers=3] [--items=60]\n");
    return 0;
  }
  if (!flags.validate({"nodes", "publishers", "items"}, "news_feed [--nodes=96] [--publishers=3] [--items=60]\n")) {
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 96));
  const auto publishers =
      static_cast<std::size_t>(flags.get_int("publishers", 3));
  const auto items = static_cast<std::size_t>(flags.get_int("items", 60));

  std::printf("=== news feed: %zu readers, %zu publishers, %zu items each ===\n",
              nodes, publishers, items);

  workload::SystemBase base(2026, workload::TestbedKind::kCluster);
  std::map<net::NodeId, FeedNode> stack;
  std::vector<net::NodeId> ids;

  for (std::size_t i = 0; i < nodes; ++i) {
    const net::NodeId id = base.network().add_host();
    FeedNode node;
    node.pss = std::make_unique<membership::HyParView>(
        base.network(), base.transport(), id, membership::HyParView::Config{});
    node.engine = std::make_unique<core::BrisaEngine>(base.network(),
                                                      *node.pss, id);
    for (std::size_t stream = 0; stream < publishers; ++stream) {
      node.engine->add_stream(static_cast<net::StreamId>(stream),
                              core::Brisa::Config{});
    }
    stack.emplace(id, std::move(node));
    ids.push_back(id);
  }

  // Bootstrap the shared overlay.
  stack.at(ids[0]).pss->start();
  sim::Rng boot = base.simulator().rng().split(1);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    const net::NodeId joiner = ids[i];
    const net::NodeId contact = ids[boot.uniform(i)];
    base.simulator().after(
        sim::Duration::milliseconds(static_cast<std::int64_t>(100 * i)),
        [&stack, joiner, contact]() { stack.at(joiner).pss->join(contact); });
  }
  base.run_for(sim::Duration::seconds(40));

  // Each publisher sources one stream from a different node.
  for (std::size_t stream = 0; stream < publishers; ++stream) {
    const net::NodeId publisher = ids[stream * (nodes / publishers)];
    auto& source =
        stack.at(publisher).engine->stream(static_cast<net::StreamId>(stream));
    source.become_source();
    for (std::size_t item = 0; item < items; ++item) {
      base.simulator().after(
          sim::Duration::milliseconds(static_cast<std::int64_t>(
              200 * item + 37 * stream)),
          [&source]() { source.broadcast(2048); });
    }
  }
  base.run_for(sim::Duration::seconds(
      static_cast<std::int64_t>(items) / 5 + 30));

  // Report per-stream delivery and the load-spreading effect.
  for (std::size_t stream = 0; stream < publishers; ++stream) {
    std::size_t complete = 0;
    std::vector<double> degrees;
    for (const net::NodeId id : ids) {
      const auto& brisa_node =
          stack.at(id).engine->stream(static_cast<net::StreamId>(stream));
      if (brisa_node.stats().delivery_time.size() == items) ++complete;
      degrees.push_back(static_cast<double>(brisa_node.children().size()));
    }
    std::printf(
        "stream %zu: %zu/%zu readers got all %zu items; interior nodes "
        "(degree>0): %.0f%%\n",
        stream, complete, ids.size(), items,
        100.0 - analysis::percentile(degrees, 50) * 0 -
            100.0 * static_cast<double>(std::count(degrees.begin(),
                                                   degrees.end(), 0.0)) /
                static_cast<double>(degrees.size()));
  }

  // How many distinct roles does a node play across streams?
  std::size_t mixed_roles = 0;
  for (const net::NodeId id : ids) {
    bool leaf_somewhere = false, interior_somewhere = false;
    for (std::size_t stream = 0; stream < publishers; ++stream) {
      if (stack.at(id)
              .engine->stream(static_cast<net::StreamId>(stream))
              .children()
              .empty()) {
        leaf_somewhere = true;
      } else {
        interior_somewhere = true;
      }
    }
    if (leaf_somewhere && interior_somewhere) ++mixed_roles;
  }
  std::printf(
      "%zu/%zu nodes are a leaf in one tree and interior in another — the "
      "load-spreading effect of per-stream trees (§IV)\n",
      mixed_roles, ids.size());
  return 0;
}
