// A news feed that survives a network partition (§III reliability story,
// driven through the fault DSL): a BRISA overlay streams items while two
// node groups are cut off from each other mid-stream, then heal. Crashed
// subscribers rejoin with their state intact.
//
//   $ ./example_partitioned_feed [--nodes=96] [--items=80] [--seed=1]
//
// Demonstrates the workload-level fault wiring end to end: a churn script
// with fault statements, the ChurnDriver installing the FaultPlan into the
// Network, and the per-class dropped/blackholed accounting surfaced through
// analysis::fault_counter_rows.
#include <cstdio>

#include "analysis/stats.h"
#include "util/flags.h"
#include "workload/brisa_system.h"
#include "workload/churn.h"

using namespace brisa;

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.help_requested()) {
    std::printf(
        "example_partitioned_feed [--nodes=96] [--items=80] [--seed=1]\n");
    return 0;
  }
  if (!flags.validate(
          {"nodes", "items", "seed"},
          "example_partitioned_feed [--nodes=96] [--items=80] [--seed=1]\n")) {
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 96));
  const auto items = static_cast<std::size_t>(flags.get_int("items", 80));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  workload::BrisaSystem::Config config;
  config.seed = seed;
  config.num_nodes = nodes;
  config.join_spread = sim::Duration::seconds(20);
  config.stabilization = sim::Duration::seconds(25);
  workload::BrisaSystem system(config);
  system.bootstrap();
  std::printf("overlay up: %zu subscribers\n",
              system.member_ids().size());

  // The scenario, in the fault DSL: 10% background loss, a 12 s partition
  // between two groups, a burst of subscriber crashes, and a latency spike.
  const std::string scenario =
      "from 0 s to 60 s drop 10%\n"
      "at 3 s partition 0-11 from 12-23 for 12 s\n"
      "at 6 s crash 4 for 8 s\n"
      "from 20 s to 30 s slow 3x\n"
      "at 90 s stop\n";
  std::printf("fault scenario:\n%s", scenario.c_str());
  workload::ChurnScript script = workload::ChurnScript::parse(scenario);
  workload::ChurnDriver driver(system.simulator(), script,
                               system.churn_hooks());
  driver.arm();

  // Publish the feed through the faults, with generous catch-up time.
  system.run_stream(items, 4.0, 1024, sim::Duration::seconds(45));

  std::size_t fully_served = 0;
  for (const net::NodeId id : system.member_ids()) {
    if (system.brisa(id).stats().delivery_time.size() == items) {
      ++fully_served;
    }
  }
  std::printf("\n%zu/%zu subscribers hold all %zu items; crashes=%llu "
              "recoveries=%llu\n",
              fully_served, system.member_ids().size(), items,
              static_cast<unsigned long long>(driver.counters().crashes),
              static_cast<unsigned long long>(driver.counters().recoveries));
  std::printf("complete delivery: %s\n",
              system.complete_delivery() ? "yes" : "no");
  std::printf("\n%s",
              analysis::format_counters(
                  "fault-layer activity",
                  analysis::fault_counter_rows(system.network()))
                  .c_str());
  return 0;
}
