// Live media streaming under churn — the paper's motivating scenario for
// DAG mode (§II-G): a node with two parents keeps playing through parent
// failures without waiting for repair.
//
//   $ ./live_stream [--nodes=128] [--seconds=120] [--churn=5]
//
// Simulates a 64 kbps "radio" stream (1 KB chunks at 8/s) over a network
// losing --churn % of its nodes per minute, and reports per-listener
// interruption statistics (longest gap between consecutive chunk arrivals)
// for tree vs DAG-2 side by side.
#include <cstdio>

#include "analysis/stats.h"
#include "util/flags.h"
#include "workload/brisa_system.h"
#include "workload/churn.h"

using namespace brisa;

namespace {

struct PlaybackReport {
  std::vector<double> longest_gap_ms;  ///< worst stall per listener
  double orphan_events = 0;
  bool complete = false;
};

PlaybackReport run(std::size_t nodes, std::int64_t seconds, double churn,
                   core::StructureMode mode, std::size_t parents) {
  workload::BrisaSystem::Config config;
  config.seed = 7;
  config.num_nodes = nodes;
  config.brisa.mode = mode;
  config.brisa.num_parents = parents;
  config.join_spread = sim::Duration::seconds(15);
  config.stabilization = sim::Duration::seconds(20);
  workload::BrisaSystem system(config);
  system.bootstrap();

  workload::ChurnScript script = workload::ChurnScript::parse(
      "at 0 s set replacement ratio to 100%\n"
      "from 0 s to " + std::to_string(seconds) + " s const churn " +
      std::to_string(churn) + "% each 60 s\n" +
      "at " + std::to_string(seconds) + " s stop\n");
  workload::ChurnDriver driver(system.simulator(), script,
                               system.churn_hooks());
  driver.arm();

  const auto chunks = static_cast<std::size_t>(seconds * 8);  // 8 chunks/s
  system.run_stream(chunks, 8.0, 1024, sim::Duration::seconds(20));

  PlaybackReport report;
  report.complete = system.complete_delivery();
  for (const net::NodeId id : system.member_ids()) {
    if (id == system.source_id()) continue;
    const auto& times = system.brisa(id).stats().delivery_time;
    if (times.size() < 2) continue;
    double longest_ms = 0;
    auto prev = times.begin();
    for (auto it = std::next(times.begin()); it != times.end(); ++it) {
      longest_ms = std::max(longest_ms,
                            (it->second - prev->second).to_milliseconds());
      prev = it;
    }
    report.longest_gap_ms.push_back(longest_ms);
    report.orphan_events +=
        static_cast<double>(system.brisa(id).stats().orphan_events);
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("live_stream [--nodes=128] [--seconds=120] [--churn=5]\n");
    return 0;
  }
  if (!flags.validate({"nodes", "seconds", "churn"}, "live_stream [--nodes=128] [--seconds=120] [--churn=5]\n")) {
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 128));
  const auto seconds = flags.get_int("seconds", 120);
  const auto churn = flags.get_double("churn", 5.0);

  std::printf(
      "=== live stream: %zu listeners, %llds of 8 chunk/s audio, %.0f%%/min "
      "churn ===\n",
      nodes, static_cast<long long>(seconds), churn);

  for (const bool dag : {false, true}) {
    const PlaybackReport report =
        run(nodes, seconds, churn,
            dag ? core::StructureMode::kDag : core::StructureMode::kTree,
            dag ? 2 : 1);
    std::printf(
        "\n%s: worst playback stall per listener: p50=%.0f ms p90=%.0f ms "
        "max=%.0f ms\n",
        dag ? "DAG-2 " : "tree  ",
        analysis::percentile(report.longest_gap_ms, 50),
        analysis::percentile(report.longest_gap_ms, 90),
        analysis::sample_max(report.longest_gap_ms));
    std::printf("        total orphan events: %.0f; every chunk delivered: %s\n",
                report.orphan_events, report.complete ? "yes" : "NO");
  }
  std::printf(
      "\nexpected: the DAG masks parent failures (far fewer orphans), "
      "trading ~2x download bandwidth for continuity (§II-G)\n");
  return 0;
}
