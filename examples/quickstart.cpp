// Quickstart: bring up a 64-node BRISA deployment, stream 100 messages, and
// inspect the emergent tree.
//
//   $ ./quickstart [--nodes=64] [--messages=100] [--dag]
//
// This is the smallest end-to-end use of the public API:
//   1. configure and bootstrap a BrisaSystem (HyParView + BRISA per node);
//   2. stream from the source;
//   3. read per-node statistics and the emergent structure.
#include <cstdio>

#include "analysis/stats.h"
#include "util/flags.h"
#include "workload/brisa_system.h"

using namespace brisa;

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("quickstart [--nodes=64] [--messages=100] [--dag]\n");
    return 0;
  }
  if (!flags.validate({"nodes", "messages", "dag"}, "quickstart [--nodes=64] [--messages=100] [--dag]\n")) {
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 64));
  const auto messages =
      static_cast<std::size_t>(flags.get_int("messages", 100));
  const bool dag = flags.get_bool("dag", false);

  // 1. Configure the deployment. Defaults follow the paper's evaluation:
  //    HyParView with active view 4 (expansion factor 2), first-come
  //    parent selection, cluster network model.
  workload::BrisaSystem::Config config;
  config.seed = 42;
  config.num_nodes = nodes;
  config.join_spread = sim::Duration::seconds(10);
  config.stabilization = sim::Duration::seconds(20);
  if (dag) {
    config.brisa.mode = core::StructureMode::kDag;
    config.brisa.num_parents = 2;
  }

  workload::BrisaSystem system(config);
  std::printf("bootstrapping %zu nodes (%s)...\n", nodes,
              dag ? "DAG, 2 parents" : "tree");
  system.bootstrap();

  // A delivery callback on one node, to show the application-facing API.
  const net::NodeId observer = system.member_ids().back();
  std::size_t observed = 0;
  system.brisa(observer).set_delivery_handler(
      [&observed](std::uint64_t seq, std::size_t bytes) {
        ++observed;
        if (seq % 25 == 0) {
          std::printf("  observer got message %llu (%zu bytes)\n",
                      static_cast<unsigned long long>(seq), bytes);
        }
      });

  // 2. Stream.
  std::printf("streaming %zu x 1KB messages at 5/s from %u...\n", messages,
              system.source_id().index());
  system.run_stream(messages, 5.0, 1024);

  // 3. Inspect.
  std::printf("\ncomplete delivery: %s\n",
              system.complete_delivery() ? "yes" : "NO");
  std::printf("observer %u delivered %zu messages via callback\n",
              observer.index(), observed);

  std::vector<double> depths;
  std::uint64_t duplicates = 0;
  for (const net::NodeId id : system.member_ids()) {
    if (id != system.source_id()) {
      depths.push_back(static_cast<double>(system.brisa(id).depth()));
    }
    duplicates += system.brisa(id).stats().duplicates;
  }
  std::printf("structure: depth p50=%.0f max=%.0f; total duplicates=%llu "
              "(mostly from the bootstrap flood)\n",
              analysis::percentile(depths, 50), analysis::sample_max(depths),
              static_cast<unsigned long long>(duplicates));

  const net::NodeId sample = system.member_ids()[nodes / 2];
  std::printf("node %u: parents = [", sample.index());
  for (const net::NodeId parent : system.brisa(sample).parents()) {
    std::printf(" %u", parent.index());
  }
  std::printf(" ], children = %zu, depth = %d\n",
              system.brisa(sample).children().size(),
              system.brisa(sample).depth());

  // 4. Event-core profile of the run: how much simulator work the
  //    deployment generated, and that the hot paths stayed pooled.
  std::printf("%s", analysis::format_counters(
                        "event core profile",
                        analysis::sim_counter_rows(system.simulator()))
                        .c_str());
  return 0;
}
