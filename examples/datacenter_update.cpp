// Datacenter software-update push — the paper's intro scenario of shipping
// code/updates to a whole fleet (§I cites Twitter's Murder): one coordinator
// pushes a multi-megabyte artifact, chunked, to every machine, and we
// compare BRISA's emergent tree against naive flooding on the same overlay.
//
//   $ ./datacenter_update [--nodes=256] [--update-mb=8] [--chunk-kb=64]
//
// Reported: completion time (last machine finished), per-node upload burden
// (the paper's motivation: no node should pay much more than the artifact
// size), and the duplicate ratio.
#include <cstdio>

#include "analysis/stats.h"
#include "util/flags.h"
#include "workload/brisa_system.h"

using namespace brisa;

namespace {

struct PushReport {
  double completion_s = 0;
  double upload_p50_mb = 0;
  double upload_p90_mb = 0;
  double duplicate_ratio = 0;
  bool complete = false;
};

PushReport run(std::size_t nodes, std::size_t chunks, std::size_t chunk_bytes,
               bool prune) {
  workload::BrisaSystem::Config config;
  config.seed = 99;
  config.num_nodes = nodes;
  config.brisa.prune = prune;
  config.join_spread = sim::Duration::seconds(15);
  config.stabilization = sim::Duration::seconds(20);
  workload::BrisaSystem system(config);
  system.bootstrap();
  system.network().reset_stats();

  const sim::TimePoint started = system.simulator().now();
  // Push as fast as the source NIC allows: 50 chunks/s of chunk_bytes each.
  system.run_stream(chunks, 50.0, chunk_bytes, sim::Duration::seconds(30));

  PushReport report;
  report.complete = system.complete_delivery();
  double last_s = 0;
  std::vector<double> upload_mb;
  std::uint64_t deliveries = 0, duplicates = 0;
  for (const net::NodeId id : system.member_ids()) {
    const auto& stats = system.brisa(id).stats();
    if (!stats.delivery_time.empty()) {
      last_s = std::max(
          last_s,
          (std::prev(stats.delivery_time.end())->second - started)
              .to_seconds());
    }
    deliveries += stats.delivered;
    duplicates += stats.duplicates;
    upload_mb.push_back(
        static_cast<double>(system.network().stats(id).total_up_bytes()) /
        (1024.0 * 1024.0));
  }
  report.completion_s = last_s;
  report.upload_p50_mb = analysis::percentile(upload_mb, 50);
  report.upload_p90_mb = analysis::percentile(upload_mb, 90);
  report.duplicate_ratio = deliveries > 0
                               ? static_cast<double>(duplicates) /
                                     static_cast<double>(deliveries)
                               : 0.0;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (flags.help_requested()) {
    std::printf(
        "datacenter_update [--nodes=256] [--update-mb=8] [--chunk-kb=64]\n");
    return 0;
  }
  if (!flags.validate(
          {"nodes", "update-mb", "chunk-kb"},
          "datacenter_update [--nodes=256] [--update-mb=8] [--chunk-kb=64]\n")) {
    return 2;
  }
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 256));
  const auto update_mb = static_cast<std::size_t>(flags.get_int("update-mb", 8));
  const auto chunk_kb = static_cast<std::size_t>(flags.get_int("chunk-kb", 64));
  const std::size_t chunk_bytes = chunk_kb * 1024;
  const std::size_t chunks = update_mb * 1024 / chunk_kb;

  std::printf(
      "=== datacenter update push: %zu machines, %zu MB artifact in %zu x "
      "%zu KB chunks ===\n",
      nodes, update_mb, chunks, chunk_kb);

  const PushReport tree = run(nodes, chunks, chunk_bytes, /*prune=*/true);
  const PushReport flood = run(nodes, chunks, chunk_bytes, /*prune=*/false);

  std::printf("\n%-16s %12s %14s %14s %12s %9s\n", "strategy",
              "completion", "upload p50", "upload p90", "dup ratio",
              "complete");
  auto row = [](const char* name, const PushReport& r) {
    std::printf("%-16s %10.1f s %11.1f MB %11.1f MB %11.2f %9s\n", name,
                r.completion_s, r.upload_p50_mb, r.upload_p90_mb,
                r.duplicate_ratio, r.complete ? "yes" : "NO");
  };
  row("BRISA tree", tree);
  row("flooding", flood);

  std::printf(
      "\nexpected: the tree ships the %zu MB artifact with every machine "
      "uploading ~(children x artifact); flooding multiplies cluster traffic "
      "by the duplicate ratio for zero gain (§I / Fig 2)\n",
      update_mb);
  return 0;
}
