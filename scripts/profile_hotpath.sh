#!/usr/bin/env bash
# Profile the simulator hot path with perf, falling back to a plain timed
# run when perf is unavailable (minimal containers usually lack it).
#
#   scripts/profile_hotpath.sh [BENCH_FILTER] [-- extra bench args...]
#
# Examples:
#   scripts/profile_hotpath.sh                         # BM_SimEventRate
#   scripts/profile_hotpath.sh 'SimEventRate/heap/100000'
#   scripts/profile_hotpath.sh 'EventQueueTimerChurn' -- --benchmark_min_time=1
#
# Output: perf.data + a trimmed `perf report` summary on stdout. The bench
# binary must exist (cmake --build build -j --target bench_micro_sim) and is
# run from the build directory, which bench_micro_sim requires.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
bench="$build/bench_micro_sim"
filter="${1:-BM_SimEventRate}"
[ $# -gt 0 ] && shift
[ "${1:-}" = "--" ] && shift

if [ ! -x "$bench" ]; then
  echo "error: $bench not built (cmake --build build -j --target bench_micro_sim)" >&2
  exit 1
fi

cd "$build"
args=(--benchmark_filter="$filter" --benchmark_min_time=0.5 "$@")

if command -v perf > /dev/null 2>&1; then
  perf record -g --output=perf.data -- "$bench" "${args[@]}"
  echo
  echo "=== hottest symbols (perf report --stdio, top 40 lines) ==="
  perf report --stdio --percent-limit 0.5 --input=perf.data | head -40
  echo
  echo "full report: perf report --input=$build/perf.data"
else
  echo "perf not found (install linux-perf / linux-tools to profile);" >&2
  echo "running the filter un-profiled so the numbers are still comparable:" >&2
  exec "$bench" "${args[@]}"
fi
