#!/usr/bin/env bash
# Checks that every relative markdown link / file reference in the given
# markdown files points at a file that exists in the repo. External links
# (http/https) and pure anchors (#...) are skipped. Exits non-zero listing
# each broken link. Used by the CI docs-and-scenarios job; run locally as
#   scripts/check_doc_links.sh README.md docs/*.md
set -u
cd "$(dirname "$0")/.."

status=0
for doc in "$@"; do
  if [ ! -f "$doc" ]; then
    echo "missing document: $doc"
    status=1
    continue
  fi
  # Markdown link targets: [text](target). Read line-by-line so targets
  # containing spaces survive intact.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|\#*|"") continue ;;
    esac
    path="${target%%#*}"   # strip in-file anchors
    [ -z "$path" ] && continue
    # Relative links resolve from the document's own directory.
    if [ ! -e "$(dirname "$doc")/$path" ]; then
      echo "$doc: broken link -> $target"
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//')
done
if [ "$status" -eq 0 ]; then
  echo "all relative links resolve"
fi
exit "$status"
